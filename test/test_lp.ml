(* Tests for Wsn_lp: hand-built LPs with known optima, pathological
   cases, and a brute-force vertex-enumeration oracle on random small
   problems. *)

module Problem = Wsn_lp.Problem
module Tableau = Wsn_lp.Tableau
module Types = Wsn_lp.Types
module Matrix = Wsn_linalg.Matrix
module Vector = Wsn_linalg.Vector

let check = Alcotest.check

let float_tol = Alcotest.float 1e-6

let solve_simple () =
  (* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12 *)
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:3.0 "x" in
  let y = Problem.add_var lp ~obj:2.0 "y" in
  Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Le 4.0;
  Problem.add_constraint lp [ (x, 1.0); (y, 3.0) ] Types.Le 6.0;
  match Problem.solve lp with
  | Problem.Solution s ->
    check float_tol "objective" 12.0 s.Problem.objective;
    check float_tol "x" 4.0 (s.Problem.values x);
    check float_tol "y" 0.0 (s.Problem.values y)
  | _ -> Alcotest.fail "expected optimal"

let solve_with_ge_and_eq () =
  (* min 2x + 3y  s.t. x + y = 10, x >= 4 -> x=10? obj 2*10=20 wait y>=0:
     best y=0, x=10 -> 20.  With x >= 4 not binding. *)
  let lp = Problem.create Types.Minimize in
  let x = Problem.add_var lp ~obj:2.0 "x" in
  let y = Problem.add_var lp ~obj:3.0 "y" in
  Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Eq 10.0;
  Problem.add_constraint lp [ (x, 1.0) ] Types.Ge 4.0;
  match Problem.solve lp with
  | Problem.Solution s ->
    check float_tol "objective" 20.0 s.Problem.objective;
    check float_tol "x" 10.0 (s.Problem.values x)
  | _ -> Alcotest.fail "expected optimal"

let solve_infeasible () =
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 "x" in
  Problem.add_constraint lp [ (x, 1.0) ] Types.Le 1.0;
  Problem.add_constraint lp [ (x, 1.0) ] Types.Ge 2.0;
  match Problem.solve lp with
  | Problem.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let solve_unbounded () =
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 "x" in
  let y = Problem.add_var lp ~obj:0.0 "y" in
  Problem.add_constraint lp [ (x, 1.0); (y, -1.0) ] Types.Le 1.0;
  match Problem.solve lp with
  | Problem.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let solve_with_upper_bound () =
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 ~upper:3.0 "x" in
  ignore x;
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "upper bound binds" 3.0 s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let solve_with_lower_bound () =
  (* min x with 2 <= x <= 5 -> 2 *)
  let lp = Problem.create Types.Minimize in
  let x = Problem.add_var lp ~obj:1.0 ~lower:2.0 ~upper:5.0 "x" in
  ignore x;
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "lower bound binds" 2.0 s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let solve_with_free_variable () =
  (* min x  s.t. x >= -7 encoded via free var and Ge row -> -7 *)
  let lp = Problem.create Types.Minimize in
  let x = Problem.add_var lp ~obj:1.0 ~lower:Float.neg_infinity "x" in
  Problem.add_constraint lp [ (x, 1.0) ] Types.Ge (-7.0);
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "free variable" (-7.0) s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let solve_degenerate () =
  (* Degenerate vertex: three constraints through one point. *)
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 "x" in
  let y = Problem.add_var lp ~obj:1.0 "y" in
  Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Le 2.0;
  Problem.add_constraint lp [ (x, 1.0) ] Types.Le 1.0;
  Problem.add_constraint lp [ (y, 1.0) ] Types.Le 1.0;
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "degenerate optimum" 2.0 s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let solve_duplicate_terms () =
  (* Terms on the same variable must accumulate: x + x <= 4 -> x <= 2. *)
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 "x" in
  Problem.add_constraint lp [ (x, 1.0); (x, 1.0) ] Types.Le 4.0;
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "accumulated" 2.0 s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let solve_negative_rhs () =
  (* -x <= -3 is x >= 3; min x -> 3. *)
  let lp = Problem.create Types.Minimize in
  let x = Problem.add_var lp ~obj:1.0 "x" in
  Problem.add_constraint lp [ (x, -1.0) ] Types.Le (-3.0);
  match Problem.solve lp with
  | Problem.Solution s -> check float_tol "negative rhs" 3.0 s.Problem.objective
  | _ -> Alcotest.fail "expected optimal"

let add_var_validation () =
  let lp = Problem.create Types.Maximize in
  Alcotest.check_raises "upper < lower" (Invalid_argument "Problem.add_var: upper < lower")
    (fun () -> ignore (Problem.add_var lp ~lower:2.0 ~upper:1.0 "bad"))

(* --- brute-force oracle ---------------------------------------------

   For max c.x s.t. Ax <= b, x >= 0 (all-Le, bounded by construction),
   the optimum sits at a vertex: the intersection of n linearly
   independent active constraints drawn from the rows of A and the axes.
   Enumerate all such intersections, keep the feasible ones, take the
   best objective. *)

let gauss_solve a b =
  (* Solve a (n x n) system; None if singular. *)
  let n = Array.length b in
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let rec elim col =
    if col = n then true
    else begin
      let pivot = ref (-1) in
      for i = col to n - 1 do
        if !pivot = -1 && Float.abs m.(i).(col) > 1e-9 then pivot := i
      done;
      if !pivot = -1 then false
      else begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        for i = 0 to n - 1 do
          if i <> col then begin
            let f = m.(i).(col) /. m.(col).(col) in
            for j = col to n do
              m.(i).(j) <- m.(i).(j) -. (f *. m.(col).(j))
            done
          end
        done;
        elim (col + 1)
      end
    end
  in
  if elim 0 then Some (Array.init n (fun i -> m.(i).(n) /. m.(i).(i))) else None

let rec choose k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

let brute_force_max ~a ~b ~c =
  let m = Array.length a and n = Array.length c in
  (* Constraint rows: A rows (= b) and axes (x_j = 0). *)
  let rows = Array.to_list (Array.mapi (fun i row -> (row, b.(i))) a) in
  let axes = List.init n (fun j -> (Array.init n (fun k -> if k = j then 1.0 else 0.0), 0.0)) in
  let feasible x =
    Array.for_all (fun v -> v >= -1e-7) x
    && List.for_all
         (fun i ->
           let lhs = ref 0.0 in
           Array.iteri (fun j v -> lhs := !lhs +. (a.(i).(j) *. v)) x;
           !lhs <= b.(i) +. 1e-7)
         (List.init m Fun.id)
  in
  let best = ref None in
  List.iter
    (fun combo ->
      let sys_a = Array.of_list (List.map fst combo) in
      let sys_b = Array.of_list (List.map snd combo) in
      match gauss_solve sys_a sys_b with
      | None -> ()
      | Some x ->
        if feasible x then begin
          let obj = ref 0.0 in
          Array.iteri (fun j v -> obj := !obj +. (c.(j) *. v)) x;
          match !best with
          | Some b when b >= !obj -> ()
          | _ -> best := Some !obj
        end)
    (choose n (rows @ axes));
  !best

let qcheck_vs_brute_force =
  (* Random bounded LPs: 3 vars, 3 random Le rows plus a box row. *)
  let gen =
    QCheck.Gen.(
      let coeff = float_range (-3.0) 5.0 in
      let row = array_size (return 3) coeff in
      tup3 (array_size (return 3) row) (array_size (return 3) (float_range 1.0 10.0))
        (array_size (return 3) coeff))
  in
  QCheck.Test.make ~name:"simplex matches vertex enumeration" ~count:300
    (QCheck.make gen) (fun (a_rand, b_rand, c) ->
      (* Add sum(x) <= 20 so the region is bounded. *)
      let a = Array.append a_rand [| [| 1.0; 1.0; 1.0 |] |] in
      let b = Array.append b_rand [| 20.0 |] in
      let senses = Array.make 4 Types.Le in
      let matrix = Matrix.of_rows a in
      match Tableau.solve ~a:matrix ~b ~c ~senses with
      | Tableau.Unbounded -> false (* impossible: region is bounded *)
      | Tableau.Infeasible -> false (* impossible: origin is feasible (b >= 1) *)
      | Tableau.Optimal { objective; x; _ } ->
        let feas =
          Array.for_all (fun v -> v >= -1e-7) x
          && Array.for_all2
               (fun row rhs -> Vector.dot row x <= rhs +. 1e-6)
               (Array.init 4 (fun i -> Matrix.row matrix i))
               b
        in
        feas
        &&
        (match brute_force_max ~a ~b ~c with
         | Some best -> Float.abs (objective -. best) < 1e-5
         | None -> false))

let qcheck_minimize_is_negated_maximize =
  let gen = QCheck.Gen.(array_size (return 2) (float_range (-5.0) 5.0)) in
  QCheck.Test.make ~name:"min c.x = -max (-c).x" ~count:100 (QCheck.make gen) (fun c ->
      let build objective c =
        let lp = Problem.create objective in
        let x = Problem.add_var lp ~obj:c.(0) "x" in
        let y = Problem.add_var lp ~obj:c.(1) "y" in
        Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Le 7.0;
        Problem.add_constraint lp [ (x, 1.0) ] Types.Le 4.0;
        Problem.add_constraint lp [ (y, 1.0) ] Types.Le 5.0;
        Problem.solve lp
      in
      match (build Types.Minimize c, build Types.Maximize (Array.map Float.neg c)) with
      | Problem.Solution a, Problem.Solution b ->
        Float.abs (a.Problem.objective +. b.Problem.objective) < 1e-6
      | _ -> false)

let suite =
  [
    Alcotest.test_case "simple maximize" `Quick solve_simple;
    Alcotest.test_case "ge and eq rows" `Quick solve_with_ge_and_eq;
    Alcotest.test_case "infeasible" `Quick solve_infeasible;
    Alcotest.test_case "unbounded" `Quick solve_unbounded;
    Alcotest.test_case "upper bound" `Quick solve_with_upper_bound;
    Alcotest.test_case "lower bound" `Quick solve_with_lower_bound;
    Alcotest.test_case "free variable" `Quick solve_with_free_variable;
    Alcotest.test_case "degenerate vertex" `Quick solve_degenerate;
    Alcotest.test_case "duplicate terms accumulate" `Quick solve_duplicate_terms;
    Alcotest.test_case "negative rhs normalisation" `Quick solve_negative_rhs;
    Alcotest.test_case "add_var validation" `Quick add_var_validation;
    QCheck_alcotest.to_alcotest qcheck_vs_brute_force;
    QCheck_alcotest.to_alcotest qcheck_minimize_is_negated_maximize;
  ]

(* --- standard form and duality --------------------------------------- *)

module Standard_form = Wsn_lp.Standard_form

let test_standard_form_roundtrip () =
  let sf =
    Standard_form.of_canonical
      ~a:[| [| 1.0; 1.0 |]; [| 1.0; 3.0 |] |]
      ~b:[| 4.0; 6.0 |] ~c:[| 3.0; 2.0 |] ~senses:[ Types.Le; Types.Le ]
  in
  match Standard_form.solve sf with
  | Tableau.Optimal { objective; _ } -> check float_tol "same optimum as builder" 12.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_dual_of_known_lp () =
  (* Primal optimum 12; dual must agree. *)
  let sf =
    Standard_form.of_canonical
      ~a:[| [| 1.0; 1.0 |]; [| 1.0; 3.0 |] |]
      ~b:[| 4.0; 6.0 |] ~c:[| 3.0; 2.0 |] ~senses:[ Types.Le; Types.Le ]
  in
  match Standard_form.duality_gap sf with
  | Some gap -> check (Alcotest.float 1e-6) "no duality gap" 0.0 gap
  | None -> Alcotest.fail "both sides solvable"

let test_dual_rejects_eq () =
  let sf =
    Standard_form.of_canonical ~a:[| [| 1.0 |] |] ~b:[| 1.0 |] ~c:[| 1.0 |] ~senses:[ Types.Eq ]
  in
  Alcotest.check_raises "Eq rejected"
    (Invalid_argument "Standard_form.dual: Eq rows need free duals") (fun () ->
      ignore (Standard_form.dual sf))

let qcheck_strong_duality =
  (* Random bounded-feasible primals: strong duality must hold. *)
  let gen =
    QCheck.Gen.(
      let coeff = float_range 0.1 4.0 in
      tup2 (array_size (return 3) (array_size (return 3) coeff))
        (array_size (return 3) coeff))
  in
  QCheck.Test.make ~name:"strong duality on random LPs" ~count:200 (QCheck.make gen)
    (fun (a, c) ->
      (* Non-negative coefficients and positive rhs: primal is feasible
         (origin) and bounded (every variable appears with a positive
         coefficient in some row). *)
      let sf =
        Standard_form.of_canonical ~a ~b:[| 5.0; 7.0; 9.0 |] ~c
          ~senses:[ Types.Le; Types.Le; Types.Le ]
      in
      match Standard_form.duality_gap sf with
      | Some gap -> gap < 1e-5
      | None -> false)

let duality_suite =
  [
    Alcotest.test_case "standard form roundtrip" `Quick test_standard_form_roundtrip;
    Alcotest.test_case "dual of known LP" `Quick test_dual_of_known_lp;
    Alcotest.test_case "dual rejects Eq" `Quick test_dual_rejects_eq;
    QCheck_alcotest.to_alcotest qcheck_strong_duality;
  ]

let suite = suite @ duality_suite

(* --- dual values from the tableau ------------------------------------ *)

let test_duals_known_lp () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6: optimum (4, 0), the
     second row is slack, so y = (3, 0). *)
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:3.0 "x" in
  let y = Problem.add_var lp ~obj:2.0 "y" in
  ignore x;
  ignore y;
  Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Le 4.0;
  Problem.add_constraint lp [ (x, 1.0); (y, 3.0) ] Types.Le 6.0;
  match Problem.solve lp with
  | Problem.Solution s ->
    check float_tol "dual of binding row" 3.0 s.Problem.row_duals.(0);
    check float_tol "dual of slack row" 0.0 s.Problem.row_duals.(1);
    check float_tol "strong duality y.b"
      s.Problem.objective
      ((s.Problem.row_duals.(0) *. 4.0) +. (s.Problem.row_duals.(1) *. 6.0))
  | _ -> Alcotest.fail "expected optimal"

let qcheck_duals_certify_optimum =
  (* On random bounded LPs: y >= 0, y.b = objective and A'y >= c. *)
  let gen =
    QCheck.Gen.(
      let coeff = float_range 0.1 4.0 in
      tup2 (array_size (return 3) (array_size (return 3) coeff)) (array_size (return 3) coeff))
  in
  QCheck.Test.make ~name:"tableau duals certify optimality" ~count:200 (QCheck.make gen)
    (fun (a, c) ->
      let b = [| 5.0; 7.0; 9.0 |] in
      let senses = Array.make 3 Types.Le in
      match Tableau.solve ~a:(Matrix.of_rows a) ~b ~c ~senses with
      | Tableau.Optimal { objective; duals; _ } ->
        let yb = Vector.dot duals b in
        Array.for_all (fun yi -> yi >= -1e-7) duals
        && Float.abs (yb -. objective) < 1e-5
        && List.for_all
             (fun j ->
               let col = Array.map (fun row -> row.(j)) a in
               Vector.dot duals col >= c.(j) -. 1e-6)
             [ 0; 1; 2 ]
      | _ -> false)

let qcheck_duals_with_ge_rows =
  (* Mixed senses: min-like structure via Ge rows, still certified. *)
  QCheck.Test.make ~name:"duals certify with Ge rows" ~count:200
    QCheck.(pair (float_range 0.5 3.0) (float_range 0.5 3.0))
    (fun (p, q) ->
      (* max -x - y  s.t. x + y >= p, x >= q  -> x = max q p? optimum
         x = max q (p - y)... solved by solver; we only check the
         certificate. *)
      let a = [| [| 1.0; 1.0 |]; [| 1.0; 0.0 |] |] in
      let b = [| p; q |] in
      let c = [| -1.0; -1.0 |] in
      let senses = [| Types.Ge; Types.Ge |] in
      match Tableau.solve ~a:(Matrix.of_rows a) ~b ~c ~senses with
      | Tableau.Optimal { objective; duals; _ } ->
        (* For Ge rows in a maximisation, duals are <= 0. *)
        Array.for_all (fun yi -> yi <= 1e-7) duals
        && Float.abs (Vector.dot duals b -. objective) < 1e-6
      | _ -> false)

let dual_value_suite =
  [
    Alcotest.test_case "duals of known LP" `Quick test_duals_known_lp;
    QCheck_alcotest.to_alcotest qcheck_duals_certify_optimum;
    QCheck_alcotest.to_alcotest qcheck_duals_with_ge_rows;
  ]

let suite = suite @ dual_value_suite

let test_problem_introspection () =
  let lp = Problem.create ~name:"demo" Types.Maximize in
  let x = Problem.add_var lp ~obj:1.0 "speed" in
  Problem.add_constraint lp ~name:"cap" [ (x, 1.0) ] Types.Le 3.0;
  check Alcotest.string "problem name" "demo" (Problem.name lp);
  check Alcotest.string "var name" "speed" (Problem.var_name lp x);
  check Alcotest.int "n_vars" 1 (Problem.n_vars lp);
  check Alcotest.int "n_constraints" 1 (Problem.n_constraints lp);
  let rendered = Format.asprintf "%a" Problem.pp lp in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "pp mentions the variable" true (contains rendered "speed")

let introspection_suite = [ Alcotest.test_case "problem introspection" `Quick test_problem_introspection ]

let suite = suite @ introspection_suite

(* --- flat-layout parity: row-major rewrite vs the Matrix tableau ----- *)

(* Verbatim core of the previous Matrix-backed Tableau (telemetry
   stripped).  The flat rewrite claims *bit-identical* floats, not just
   equal optima, because it preserves the order of every float op; this
   reference pins that claim against the old layout. *)
module Ref_tableau = struct
  type result =
    | Optimal of { x : Vector.t; objective : float; duals : Vector.t }
    | Unbounded
    | Infeasible

  let eps = 1e-9

  type tab = {
    mutable t : Matrix.t;
    m : int;
    mutable ncols : int;
    mutable cap : int;
    basis : int array;
    n_struct : int;
    n_art : int;
  }

  let rhs tab i = Matrix.get tab.t i tab.cap
  let reduced_cost tab j = Matrix.get tab.t tab.m j
  let is_artificial tab j = j >= tab.n_struct && j < tab.n_struct + tab.n_art

  let price_out tab =
    for i = 0 to tab.m - 1 do
      let j = tab.basis.(i) in
      let r = reduced_cost tab j in
      if Float.abs r > 0.0 then Matrix.add_scaled_row tab.t ~src:i ~dst:tab.m (-.r)
    done

  let pivot tab ~row ~col =
    let p = Matrix.get tab.t row col in
    Matrix.scale_row tab.t row (1.0 /. p);
    for i = 0 to tab.m do
      if i <> row then begin
        let coeff = Matrix.get tab.t i col in
        if Float.abs coeff > 0.0 then Matrix.add_scaled_row tab.t ~src:row ~dst:i (-.coeff)
      end
    done;
    tab.basis.(row) <- col

  let entering tab ~allowed ~bland =
    if bland then begin
      let found = ref None in
      (try
         for j = 0 to tab.ncols - 1 do
           if allowed j && reduced_cost tab j < -.eps then begin
             found := Some j;
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end
    else begin
      let best = ref None in
      for j = 0 to tab.ncols - 1 do
        if allowed j then begin
          let r = reduced_cost tab j in
          if r < -.eps then
            match !best with Some (_, rb) when rb <= r -> () | _ -> best := Some (j, r)
        end
      done;
      Option.map fst !best
    end

  let leaving tab ~col =
    let best = ref None in
    for i = 0 to tab.m - 1 do
      let a = Matrix.get tab.t i col in
      if a > eps then begin
        let ratio = rhs tab i /. a in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, br) ->
          if ratio < br -. eps || (ratio < br +. eps && tab.basis.(i) < tab.basis.(bi)) then
            best := Some (i, ratio)
      end
    done;
    Option.map fst !best

  type phase_outcome = Finished | Unbounded_phase

  let optimise tab ~allowed =
    let max_iters = 200 * (tab.m + tab.ncols + 10) in
    let bland_after = 20 * (tab.m + tab.ncols + 10) in
    let rec loop iter =
      if iter > max_iters then failwith "Ref_tableau.optimise: iteration cap exceeded";
      match entering tab ~allowed ~bland:(iter > bland_after) with
      | None -> Finished
      | Some col -> (
        match leaving tab ~col with
        | None -> Unbounded_phase
        | Some row ->
          pivot tab ~row ~col;
          loop (iter + 1))
    in
    loop 0

  type state = {
    tab : tab;
    n : int;
    first_appended : int;
    flip : float array;
    sig_col : int array;
    mutable appended : int;
  }

  let extract st =
    let tab = st.tab in
    let x = Vector.zeros (st.n + st.appended) in
    for i = 0 to tab.m - 1 do
      let j = tab.basis.(i) in
      if j < st.n then x.(j) <- rhs tab i
      else if j >= st.first_appended then x.(st.n + (j - st.first_appended)) <- rhs tab i
    done;
    let duals = Vector.init tab.m (fun i -> st.flip.(i) *. Matrix.get tab.t tab.m st.sig_col.(i)) in
    Optimal { x; objective = Matrix.get tab.t tab.m tab.cap; duals }

  let solve_raw ~a ~b ~c ~senses =
    let m = Matrix.rows a in
    let n = Matrix.cols a in
    let rows = Array.init m (fun i -> Matrix.row a i) in
    let rhs0 = Array.init m (fun i -> b.(i)) in
    let senses = Array.copy senses in
    let flip = Array.make m 1.0 in
    for i = 0 to m - 1 do
      if rhs0.(i) < 0.0 || (rhs0.(i) = 0.0 && senses.(i) = Types.Ge) then begin
        rows.(i) <- Vector.scale (-1.0) rows.(i);
        rhs0.(i) <- (if rhs0.(i) = 0.0 then 0.0 else -.rhs0.(i));
        flip.(i) <- -1.0;
        senses.(i) <-
          (match senses.(i) with Types.Le -> Types.Ge | Types.Ge -> Types.Le | Types.Eq -> Types.Eq)
      end
    done;
    let n_slack =
      Array.fold_left (fun k s -> match s with Types.Le | Types.Ge -> k + 1 | Types.Eq -> k) 0 senses
    in
    let n_art =
      Array.fold_left (fun k s -> match s with Types.Ge | Types.Eq -> k + 1 | Types.Le -> k) 0 senses
    in
    let n_struct = n + n_slack in
    let ncols = n_struct + n_art in
    let t = Matrix.zeros (m + 1) (ncols + 1) in
    let basis = Array.make m (-1) in
    let slack_cursor = ref n in
    let art_cursor = ref n_struct in
    let sig_col = Array.make m (-1) in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        Matrix.set t i j rows.(i).(j)
      done;
      Matrix.set t i ncols rhs0.(i);
      (match senses.(i) with
       | Types.Le ->
         Matrix.set t i !slack_cursor 1.0;
         basis.(i) <- !slack_cursor;
         sig_col.(i) <- !slack_cursor;
         incr slack_cursor
       | Types.Ge ->
         Matrix.set t i !slack_cursor (-1.0);
         incr slack_cursor;
         Matrix.set t i !art_cursor 1.0;
         basis.(i) <- !art_cursor;
         sig_col.(i) <- !art_cursor;
         incr art_cursor
       | Types.Eq ->
         Matrix.set t i !art_cursor 1.0;
         basis.(i) <- !art_cursor;
         sig_col.(i) <- !art_cursor;
         incr art_cursor)
    done;
    let tab = { t; m; ncols; cap = ncols; basis; n_struct; n_art } in
    if n_art > 0 then begin
      for j = n_struct to ncols - 1 do
        Matrix.set t m j 1.0
      done;
      price_out tab;
      (match optimise tab ~allowed:(fun j -> j < tab.ncols) with
       | Unbounded_phase -> failwith "Ref_tableau.solve: phase 1 unbounded (impossible)"
       | Finished -> ());
      let phase1_value = -.rhs tab m in
      if phase1_value > 1e-7 then raise Exit
    end;
    for i = 0 to m - 1 do
      if is_artificial tab tab.basis.(i) then begin
        let found = ref None in
        for j = 0 to n_struct - 1 do
          if !found = None && Float.abs (Matrix.get t i j) > eps then found := Some j
        done;
        match !found with Some j -> pivot tab ~row:i ~col:j | None -> ()
      end
    done;
    for j = 0 to tab.cap do
      Matrix.set t m j 0.0
    done;
    for j = 0 to n - 1 do
      Matrix.set t m j (-.c.(j))
    done;
    price_out tab;
    let st = { tab; n; first_appended = n_struct + n_art; flip; sig_col; appended = 0 } in
    match optimise tab ~allowed:(fun j -> not (is_artificial tab j)) with
    | Unbounded_phase -> (Unbounded, None)
    | Finished -> (extract st, Some st)

  let solve_open ~a ~b ~c ~senses = try solve_raw ~a ~b ~c ~senses with Exit -> (Infeasible, None)

  let add_column st ~coeffs ~cost =
    let tab = st.tab in
    if tab.ncols >= tab.cap then begin
      let cap' = (2 * tab.cap) + 8 in
      let t' = Matrix.zeros (tab.m + 1) (cap' + 1) in
      for i = 0 to tab.m do
        for j = 0 to tab.ncols - 1 do
          Matrix.set t' i j (Matrix.get tab.t i j)
        done;
        Matrix.set t' i cap' (Matrix.get tab.t i tab.cap)
      done;
      tab.t <- t';
      tab.cap <- cap'
    end;
    let j = tab.ncols in
    tab.ncols <- j + 1;
    let a' = Array.make tab.m 0.0 in
    List.iter
      (fun (i, v) ->
        if i < 0 || i >= tab.m then invalid_arg "Ref_tableau.add_column: row out of range";
        a'.(i) <- a'.(i) +. (st.flip.(i) *. v))
      coeffs;
    for i = 0 to tab.m - 1 do
      if a'.(i) <> 0.0 then begin
        let s = st.sig_col.(i) in
        for r = 0 to tab.m do
          Matrix.set tab.t r j (Matrix.get tab.t r j +. (a'.(i) *. Matrix.get tab.t r s))
        done
      end
    done;
    Matrix.set tab.t tab.m j (Matrix.get tab.t tab.m j -. cost);
    let xi = st.n + st.appended in
    st.appended <- st.appended + 1;
    xi

  let reoptimize st =
    let tab = st.tab in
    match optimise tab ~allowed:(fun j -> not (is_artificial tab j)) with
    | Unbounded_phase -> Unbounded
    | Finished -> extract st
end

let results_bit_identical r_new r_old =
  match (r_new, r_old) with
  | Tableau.Unbounded, Ref_tableau.Unbounded -> true
  | Tableau.Infeasible, Ref_tableau.Infeasible -> true
  | ( Tableau.Optimal { x; objective; duals },
      Ref_tableau.Optimal { x = rx; objective = robj; duals = rduals } ) ->
    Float.equal objective robj
    && Array.length x = Array.length rx
    && Array.for_all2 Float.equal x rx
    && Array.for_all2 Float.equal duals rduals
  | _ -> false

let parity_gen =
  QCheck.Gen.(
    let coeff = float_range (-3.0) 4.0 in
    tup4
      (array_size (return 3) (array_size (return 3) coeff))
      (array_size (return 3) (float_range (-4.0) 8.0))
      (array_size (return 3) (oneofl [ Types.Le; Types.Ge; Types.Eq ]))
      (array_size (return 3) coeff))

let qcheck_flat_parity_solve =
  (* Mixed senses and negative right-hand sides exercise phase 1, row
     flips and the artificial drive-out on both layouts. *)
  QCheck.Test.make ~name:"flat tableau bit-identical to Matrix layout" ~count:500
    (QCheck.make parity_gen) (fun (rows, b, senses, c) ->
      let a = Matrix.of_rows rows in
      results_bit_identical (Tableau.solve ~a ~b ~c ~senses)
        (fst (Ref_tableau.solve_open ~a ~b ~c ~senses)))

let qcheck_flat_parity_warm =
  (* The warm path covers add_column's grow-and-blit (appending 9
     columns forces at least one reallocation on both layouts). *)
  QCheck.Test.make ~name:"warm add_column/reoptimize bit-identical to Matrix layout" ~count:200
    (QCheck.make parity_gen) (fun (rows, b, senses, c) ->
      let a = Matrix.of_rows rows in
      match
        ( Tableau.solve_open ~pricing:Tableau.Dantzig ~perturb:false ~a ~b ~c ~senses (),
          Ref_tableau.solve_open ~a ~b ~c ~senses )
      with
      | (_, Some st_new), (_, Some st_old) ->
        let ok = ref true in
        for k = 0 to 8 do
          let coeffs = [ (0, 1.0 +. float_of_int k); (2, -0.5) ] in
          let cost = 1.0 +. (0.25 *. float_of_int k) in
          let i_new = Tableau.add_column st_new ~coeffs ~cost in
          let i_old = Ref_tableau.add_column st_old ~coeffs ~cost in
          if i_new <> i_old then ok := false;
          if not (results_bit_identical (Tableau.reoptimize st_new) (Ref_tableau.reoptimize st_old))
          then ok := false
        done;
        !ok
      | (_, None), (_, None) -> true
      | _ -> false)

let parity_suite =
  [
    QCheck_alcotest.to_alcotest qcheck_flat_parity_solve;
    QCheck_alcotest.to_alcotest qcheck_flat_parity_warm;
  ]

(* --- Devex pricing and perturbation vs the Dantzig reference -------- *)

module Registry = Wsn_telemetry.Registry

let objectives_agree r_a r_b =
  match (r_a, r_b) with
  | Tableau.Unbounded, Tableau.Unbounded -> true
  | Tableau.Infeasible, Tableau.Infeasible -> true
  | Tableau.Optimal { objective = o1; _ }, Tableau.Optimal { objective = o2; _ } ->
    Float.abs (o1 -. o2) <= 1e-6 *. (1.0 +. Float.abs o2)
  | _ -> false

let qcheck_devex_parity =
  (* Devex pricing plus degenerate-pivot perturbation may walk a
     different vertex sequence than Dantzig, but the clean-up pass
     guarantees an exact optimum of the same problem: objectives must
     agree on the cold solve and on every warm resolve. *)
  QCheck.Test.make ~name:"Devex+perturb warm path matches Dantzig objectives" ~count:200
    (QCheck.make parity_gen) (fun (rows, b, senses, c) ->
      let a = Matrix.of_rows rows in
      match
        ( Tableau.solve_open ~pricing:Tableau.Devex ~perturb:true ~a ~b ~c ~senses (),
          Tableau.solve_open ~pricing:Tableau.Dantzig ~perturb:false ~a ~b ~c ~senses () )
      with
      | (r1, Some st1), (r2, Some st2) ->
        let ok = ref (objectives_agree r1 r2) in
        for k = 0 to 8 do
          let coeffs = [ (0, 1.0 +. float_of_int k); (2, -0.5) ] in
          let cost = 1.0 +. (0.25 *. float_of_int k) in
          ignore (Tableau.add_column st1 ~coeffs ~cost);
          ignore (Tableau.add_column st2 ~coeffs ~cost);
          if not (objectives_agree (Tableau.reoptimize st1) (Tableau.reoptimize st2)) then
            ok := false
        done;
        !ok
      | (r1, None), (r2, None) -> objectives_agree r1 r2
      | _ -> false)

(* A deliberately degenerate covering master in the Eq. 6 shape:
   [m] unit-capacity rows, singleton seed columns worth 1.0 each, then
   24 warm-appended 3-subset columns with slowly increasing worth.
   Every append prices in against rows that are already tight, so the
   ratio test ties three ways and the basis stays massively
   degenerate — the regime Devex + perturbation exists for. *)
let degenerate_cover_master ~pricing ~perturb =
  let m = 10 in
  let rows = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1.0 else 0.0)) in
  let a = Matrix.of_rows rows in
  let b = Array.make m 1.0 in
  let senses = Array.make m Types.Le in
  let c = Array.make m 1.0 in
  match Tableau.solve_open ~pricing ~perturb ~a ~b ~c ~senses () with
  | _, None -> Alcotest.fail "cover master: expected a warm state"
  | _, Some st ->
    let final = ref Tableau.Infeasible in
    for k = 0 to 23 do
      let base = k * 7 in
      let coeffs =
        [ (base mod m, 1.0); ((base + 3) mod m, 1.0); ((base + 5) mod m, 1.0) ]
      in
      ignore (Tableau.add_column st ~coeffs ~cost:(3.0 +. (0.1 *. float_of_int (k + 1))));
      final := Tableau.reoptimize st
    done;
    !final

let cover_pivot_regression () =
  let pivots = Registry.counter "lp.pivots" in
  let was = Registry.is_enabled () in
  Registry.set_enabled true;
  let measure ~pricing ~perturb =
    let before = Registry.counter_value pivots in
    let r = degenerate_cover_master ~pricing ~perturb in
    (r, Registry.counter_value pivots - before)
  in
  let r_stab, p_stab = measure ~pricing:Tableau.Devex ~perturb:true in
  let r_ref, p_ref = measure ~pricing:Tableau.Dantzig ~perturb:false in
  Registry.set_enabled was;
  (match (r_stab, r_ref) with
   | Tableau.Optimal { objective = o1; _ }, Tableau.Optimal { objective = o2; _ } ->
     check float_tol "same optimum" o2 o1
   | _ -> Alcotest.fail "cover master: expected optimal on both arms");
  if p_stab > p_ref then
    Alcotest.failf "stabilised arm pivoted more (%d) than the Dantzig reference (%d)"
      p_stab p_ref;
  (* Pinned ceiling: the stabilised arm currently needs well under this
     many pivots across the 24 resolves; a breach means a pricing or
     perturbation regression, not noise (the instance is fixed). *)
  if p_stab > 120 then
    Alcotest.failf "stabilised pivot count regressed: %d > 120" p_stab

let stabilisation_suite =
  [
    QCheck_alcotest.to_alcotest qcheck_devex_parity;
    Alcotest.test_case "degenerate cover master: pivot regression" `Quick
      cover_pivot_regression;
  ]

(* --- Sensitivity: duals, ranging, and basis-reuse predictions ------- *)

(* max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6: optimum x=4, y=0, obj 12,
   duals (3, 0).  The hand-checkable anchor for every sensitivity
   entry point. *)
let sens_anchor () =
  let lp = Problem.create Types.Maximize in
  let x = Problem.add_var lp ~obj:3.0 "x" in
  let y = Problem.add_var lp ~obj:2.0 "y" in
  Problem.add_constraint lp [ (x, 1.0); (y, 1.0) ] Types.Le 4.0;
  Problem.add_constraint lp [ (x, 1.0); (y, 3.0) ] Types.Le 6.0;
  match Problem.solve_warm lp with
  | Problem.Solution s, Some w -> (lp, x, y, s, w)
  | _ -> Alcotest.fail "sens anchor: expected optimal"

let sens_duals_and_reduced_costs () =
  let _, x, y, s, w = sens_anchor () in
  let d = Problem.warm_duals w in
  check float_tol "dual row 0" 3.0 d.(0);
  check float_tol "dual row 1" 0.0 d.(1);
  check float_tol "warm_duals = row_duals (0)" s.Problem.row_duals.(0) d.(0);
  check float_tol "warm_duals = row_duals (1)" s.Problem.row_duals.(1) d.(1);
  check float_tol "basic x has zero reduced cost" 0.0 (Problem.warm_reduced_cost w x);
  (* z_y = y·a_y - c_y = (3·1 + 0·3) - 2 = 1. *)
  check float_tol "nonbasic y prices at 1" 1.0 (Problem.warm_reduced_cost w y)

let sens_rhs_ranging_and_predict () =
  let _, _, _, _, w = sens_anchor () in
  let dir = [ (0, 1.0) ] in
  let lo, hi = Problem.rhs_ranging w ~dir in
  (* b0 + t: x tracks it until row 1 binds at x = 6 (t = 2); shrinking
     empties x at t = -4. *)
  check float_tol "rhs range lo" (-4.0) lo;
  check float_tol "rhs range hi" 2.0 hi;
  (* Inside the range: linear in the dual, no pivots. *)
  let p = Problem.predict_rhs_delta w ~dir ~t:1.0 in
  Alcotest.(check bool) "in-range is pure basis reuse" false p.Problem.repivoted;
  check float_tol "in-range objective" 15.0 (Problem.objective_exn p.Problem.predicted);
  (* Outside: the dual-simplex fallback must find the true optimum
     (b0 = 7 leaves row 1 binding: x = 6, obj 18). *)
  let p = Problem.predict_rhs_delta w ~dir ~t:3.0 in
  Alcotest.(check bool) "out-of-range repivots" true p.Problem.repivoted;
  check float_tol "out-of-range objective" 18.0 (Problem.objective_exn p.Problem.predicted);
  (* Prediction never mutates the warm state. *)
  check float_tol "warm state rolled back" 12.0 (Problem.objective_exn (Problem.resolve w))

let sens_obj_predict () =
  let _, x, _, _, w = sens_anchor () in
  (* In range: x stays basic at 4, the objective moves by 4δ. *)
  let p = Problem.predict_obj_delta w x ~delta:(-0.5) in
  Alcotest.(check bool) "in-range obj move reuses basis" false p.Problem.repivoted;
  check float_tol "objective moves by x·delta" 10.0 (Problem.objective_exn p.Problem.predicted);
  (match p.Problem.predicted with
   | Problem.Solution s -> check float_tol "x unchanged in range" 4.0 (s.Problem.values x)
   | _ -> Alcotest.fail "expected solution");
  (* Far out of range (c_x = 0.5): the optimum flips to y = 2, obj 4. *)
  let p = Problem.predict_obj_delta w x ~delta:(-2.5) in
  Alcotest.(check bool) "out-of-range obj move repivots" true p.Problem.repivoted;
  check float_tol "repivoted objective" 4.0 (Problem.objective_exn p.Problem.predicted);
  check float_tol "warm state rolled back" 12.0 (Problem.objective_exn (Problem.resolve w))

(* Random Eq.6-shaped cover masters at the Problem layer: m unit rows,
   singleton seeds, then a chain of add_column/resolve appends — the
   exact usage pattern of Column_gen's warm loop.  Every resolve's
   duals must satisfy the conventions problem.mli documents, because
   the whole sensitivity layer leans on them. *)
type rand_master = {
  rm_b : float array;
  rm_cols : (Problem.var * (int * float) list) list;  (* in append order *)
  rm_objs : float list;  (* objective coefficient per column, same order *)
  rm_warm : Problem.warm;
  rm_outcome : Problem.outcome;
}

let build_random_master seed =
  let rng = Random.State.make [| seed; 0x5e45 |] in
  let m = 4 + Random.State.int rng 5 in
  let b = Array.init m (fun _ -> 0.5 +. Random.State.float rng 2.0) in
  let lp = Problem.create Types.Maximize in
  let singles =
    List.init m (fun i -> (Problem.add_var lp ~obj:1.0 (Printf.sprintf "x%d" i), [ (i, 1.0) ]))
  in
  Array.iteri
    (fun i bi ->
      Problem.add_constraint lp
        (List.filter_map (fun (v, t) -> if List.mem_assoc i t then Some (v, 1.0) else None) singles)
        Types.Le bi)
    b;
  match Problem.solve_warm lp with
  | outcome, Some w ->
    let cols = ref (List.rev singles) and objs = ref (List.rev_map (fun _ -> 1.0) singles) in
    let outcome = ref outcome in
    let n_appends = 4 + Random.State.int rng 9 in
    for _ = 1 to n_appends do
      let r1 = Random.State.int rng m in
      let r2 = (r1 + 1 + Random.State.int rng (m - 1)) mod m in
      let r3 = (r2 + 1 + Random.State.int rng (m - 1)) mod m in
      let terms =
        List.sort_uniq compare [ r1; r2; r3 ]
        |> List.map (fun i -> (i, 0.5 +. Random.State.float rng 1.5))
      in
      let obj = 1.5 +. Random.State.float rng 2.5 in
      let v = Problem.add_column w ~obj terms in
      cols := (v, terms) :: !cols;
      objs := obj :: !objs;
      outcome := Problem.resolve w
    done;
    {
      rm_b = b;
      rm_cols = List.rev !cols;
      rm_objs = List.rev !objs;
      rm_warm = w;
      rm_outcome = !outcome;
    }
  | _ -> Alcotest.fail "random master: expected a warm state"

let dual_conventions_hold rm =
  match rm.rm_outcome with
  | Problem.Unbounded | Problem.Infeasible -> false
  | Problem.Solution s ->
    let m = Array.length rm.rm_b in
    let duals = Problem.warm_duals rm.rm_warm in
    let tol = 1e-6 *. (1.0 +. Float.abs s.Problem.objective) in
    (* Strong duality: Σ duals·b = objective (maximisation form,
       zero constant term). *)
    let yb = ref 0.0 in
    Array.iteri (fun i bi -> yb := !yb +. (duals.(i) *. bi)) rm.rm_b;
    Float.abs (!yb -. s.Problem.objective) <= tol
    && Array.for_all2 Float.equal duals s.Problem.row_duals
    (* Complementary slackness on rows: positive dual ⇒ tight row. *)
    && (let activity = Array.make m 0.0 in
        List.iter
          (fun (v, terms) ->
            let x = s.Problem.values v in
            if x <> 0.0 then
              List.iter (fun (i, a) -> activity.(i) <- activity.(i) +. (a *. x)) terms)
          rm.rm_cols;
        Array.for_all
          (fun i ->
            let slack = rm.rm_b.(i) -. activity.(i) in
            duals.(i) >= -1e-7 && Float.abs (duals.(i) *. slack) <= 1e-6)
          (Array.init m Fun.id))
    (* Dual feasibility + complementary slackness on columns. *)
    && List.for_all
         (fun (v, _) ->
           let rc = Problem.warm_reduced_cost rm.rm_warm v in
           rc >= -1e-7 && Float.abs (rc *. s.Problem.values v) <= 1e-6)
         rm.rm_cols

let qcheck_dual_conventions =
  QCheck.Test.make ~name:"strong duality + complementary slackness on random warm masters"
    ~count:150
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed -> dual_conventions_hold (build_random_master seed))

(* Fresh cold solve of a random master with perturbed data, the oracle
   for both prediction paths. *)
let resolve_fresh rm ~db =
  let lp = Problem.create Types.Maximize in
  let fresh =
    List.map2
      (fun (_, terms) obj -> (Problem.add_var lp ~obj "c", terms))
      rm.rm_cols rm.rm_objs
  in
  Array.iteri
    (fun i bi ->
      Problem.add_constraint lp
        (List.filter_map
           (fun (v, terms) ->
             match List.assoc_opt i terms with Some a -> Some (v, a) | None -> None)
           fresh)
        Types.Le (bi +. db.(i)))
    rm.rm_b;
  Problem.solve lp

let qcheck_predict_rhs_matches_resolve =
  QCheck.Test.make
    ~name:"predict_rhs_delta matches a fresh re-solve, inside and outside the range"
    ~count:150
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let rm = build_random_master seed in
      match rm.rm_outcome with
      | Problem.Unbounded | Problem.Infeasible -> false
      | Problem.Solution s ->
        let rng = Random.State.make [| seed; 0xd14 |] in
        let m = Array.length rm.rm_b in
        let r1 = Random.State.int rng m in
        let r2 = (r1 + 1 + Random.State.int rng (m - 1)) mod m in
        let dir = [ (r1, 1.0); (r2, -0.5) ] in
        let lo, hi = Problem.rhs_ranging rm.rm_warm ~dir in
        let agree t want_repivot =
          let p = Problem.predict_rhs_delta rm.rm_warm ~dir ~t in
          let db = Array.make m 0.0 in
          List.iter (fun (i, d) -> db.(i) <- db.(i) +. (t *. d)) dir;
          let fresh = resolve_fresh rm ~db in
          (match want_repivot with
           | Some expect when p.Problem.repivoted <> expect -> false
           | _ -> true)
          &&
          match (p.Problem.predicted, fresh) with
          | Problem.Infeasible, Problem.Infeasible -> true
          | Problem.Solution ps, Problem.Solution fs ->
            Float.abs (ps.Problem.objective -. fs.Problem.objective)
            <= 1e-6 *. (1.0 +. Float.abs fs.Problem.objective)
          | _ -> false
        in
        let inside =
          (* A step strictly inside the stability interval must come
             off the factorized basis, no pivots. *)
          let t =
            if Float.is_finite hi then 0.7 *. hi
            else if Float.is_finite lo then 0.7 *. lo
            else 0.0
          in
          agree t (Some false)
        in
        let outside =
          (* Past the interval the dual-simplex fallback must still
             land on the true optimum of the perturbed problem. *)
          (not (Float.is_finite hi)) || agree ((2.0 *. hi) +. 1.0) None
        in
        let outside_down =
          (not (Float.is_finite lo)) || agree ((2.0 *. lo) -. 1.0) None
        in
        (* And the warm master is untouched by all of the above. *)
        let unchanged =
          match Problem.resolve rm.rm_warm with
          | Problem.Solution s' ->
            Float.abs (s'.Problem.objective -. s.Problem.objective)
            <= 1e-9 *. (1.0 +. Float.abs s.Problem.objective)
          | _ -> false
        in
        inside && outside && outside_down && unchanged)

let sensitivity_suite =
  [
    Alcotest.test_case "sensitivity: duals and reduced costs" `Quick sens_duals_and_reduced_costs;
    Alcotest.test_case "sensitivity: rhs ranging and prediction" `Quick
      sens_rhs_ranging_and_predict;
    Alcotest.test_case "sensitivity: objective-coefficient prediction" `Quick sens_obj_predict;
    QCheck_alcotest.to_alcotest qcheck_dual_conventions;
    QCheck_alcotest.to_alcotest qcheck_predict_rhs_matches_resolve;
  ]

let suite = suite @ parity_suite @ stabilisation_suite @ sensitivity_suite
