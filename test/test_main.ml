(* Test entry point: every suite in one alcotest binary. *)

let () =
  Alcotest.run "wsn_availbw"
    [
      ("telemetry", Test_telemetry.suite);
      ("prng", Test_prng.suite);
      ("linalg", Test_linalg.suite);
      ("lp", Test_lp.suite);
      ("graph", Test_graph.suite);
      ("radio", Test_radio.suite);
      ("net", Test_net.suite);
      ("conflict", Test_conflict.suite);
      ("sched", Test_sched.suite);
      ("quantize", Test_quantize.suite);
      ("availbw", Test_availbw.suite);
      ("estimators", Test_estimators.suite);
      ("routing", Test_routing.suite);
      ("qos-routing", Test_qos_routing.suite);
      ("mac", Test_mac.suite);
      ("workload", Test_workload.suite);
      ("dynamics", Test_dynamics.suite);
      ("experiments", Test_experiments.suite);
      ("engine", Test_engine.suite);
      (* Anything that spawns a domain must come after [engine]: OCaml 5
         forbids Unix.fork once any domain has ever been created, and
         the engine suite exercises the forked pool. *)
      ("parallel", Test_parallel.suite);
      ("telemetry-domains", Test_telemetry.domain_suite);
      ("joint", Test_joint.suite);
      ("column-gen", Test_column_gen.suite);
      ("server", Test_server.suite);
    ]
