(* Tests for Wsn_workload: the Fig. 1 scenarios and the random
   generator. *)

module S1 = Wsn_workload.Scenarios.Scenario_i
module S2 = Wsn_workload.Scenarios.Scenario_ii
module RS = Wsn_workload.Scenarios.Random_scenario
module Model = Wsn_conflict.Model
module Flow = Wsn_availbw.Flow
module Topology = Wsn_net.Topology

let check = Alcotest.check

let float_tol = Alcotest.float 1e-9

let test_scenario_i_structure () =
  check Alcotest.int "three links" 3 (Model.n_links S1.model);
  (* L0 and L1 are mutually independent; L2 conflicts with both. *)
  check Alcotest.bool "0 and 1 concurrent" true (Model.independent S1.model [ 0; 1 ]);
  check Alcotest.bool "0 and 2 conflict" false (Model.independent S1.model [ 0; 2 ]);
  check Alcotest.bool "1 and 2 conflict" false (Model.independent S1.model [ 1; 2 ])

let test_scenario_i_background () =
  let bg = S1.background ~lambda:0.2 in
  check Alcotest.int "two flows" 2 (List.length bg);
  List.iter (fun f -> check float_tol "demand" (0.2 *. 54.0) f.Flow.demand_mbps) bg;
  Alcotest.check_raises "lambda over half"
    (Invalid_argument "Scenario_i: lambda must be in [0, 0.5]") (fun () ->
      ignore (S1.background ~lambda:0.6))

let test_scenario_i_formulas () =
  check float_tol "optimal at 0" 54.0 (S1.optimal_bandwidth ~lambda:0.0);
  check float_tol "optimal at 0.5" 27.0 (S1.optimal_bandwidth ~lambda:0.5);
  check float_tol "naive at 0.5" 0.0 (S1.idle_time_estimate ~lambda:0.5);
  check Alcotest.bool "naive <= optimal" true
    (List.for_all
       (fun l -> S1.idle_time_estimate ~lambda:l <= S1.optimal_bandwidth ~lambda:l)
       [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ])

let test_scenario_ii_structure () =
  check Alcotest.int "four links" 4 (Model.n_links S2.model);
  check (Alcotest.list Alcotest.int) "path" [ 0; 1; 2; 3 ] S2.path;
  check float_tol "paper optimum" 16.2 S2.paper_optimum;
  let b1, b2 = S2.paper_fixed_rate_bounds in
  check float_tol "bound 1" 13.5 b1;
  check float_tol "bound 2" (108.0 /. 7.0) b2

let test_random_scenario_deterministic () =
  let a = RS.generate ~seed:3L () and b = RS.generate ~seed:3L () in
  check Alcotest.int "same link count" (Topology.n_links a.RS.topology)
    (Topology.n_links b.RS.topology);
  check Alcotest.bool "same flows" true (a.RS.flows = b.RS.flows)

let test_random_scenario_seed_matters () =
  let a = RS.generate ~seed:3L () and b = RS.generate ~seed:4L () in
  check Alcotest.bool "different instances" true
    (a.RS.flows <> b.RS.flows || Topology.n_links a.RS.topology <> Topology.n_links b.RS.topology)

let test_random_scenario_paper_shape () =
  let s = RS.generate ~seed:3L () in
  check Alcotest.int "30 nodes" 30 (Topology.n_nodes s.RS.topology);
  check Alcotest.int "8 flows" 8 (List.length s.RS.flows);
  check Alcotest.bool "connected" true (Topology.is_connected s.RS.topology);
  List.iter (fun (_, _, d) -> check float_tol "2 Mbps" 2.0 d) s.RS.flows

let test_random_scenario_custom () =
  let s = RS.generate ~n_flows:3 ~demand_mbps:1.0 ~seed:3L () in
  check Alcotest.int "3 flows" 3 (List.length s.RS.flows);
  List.iter (fun (_, _, d) -> check float_tol "1 Mbps" 1.0 d) s.RS.flows

module SS = Wsn_workload.Scenarios.Scale_scenario

let test_scale_scenario_deterministic () =
  let a = SS.generate ~n_nodes:120 ~seed:7L () and b = SS.generate ~n_nodes:120 ~seed:7L () in
  check Alcotest.int "same link count" (Topology.n_links a.SS.topology)
    (Topology.n_links b.SS.topology);
  check Alcotest.bool "same flows" true (a.SS.flows = b.SS.flows)

let test_scale_scenario_connected_and_scaled () =
  List.iter
    (fun n ->
      let s = SS.generate ~n_nodes:n ~seed:7L () in
      check Alcotest.int "node count" n (Topology.n_nodes s.SS.topology);
      check Alcotest.bool "connected" true (Topology.is_connected s.SS.topology);
      check Alcotest.int "flow scaling" (max 8 (n / 25)) (List.length s.SS.flows);
      List.iter (fun (_, _, d) -> check float_tol "default demand" 0.5 d) s.SS.flows)
    [ 30; 100 ]

let test_scale_scenario_constant_density () =
  (* The area grows linearly in n, so nodes-per-square-metre — and with
     it the expected degree — is size-independent. *)
  let area n =
    let c = SS.config ~n_nodes:n in
    c.Wsn_net.Generator.width_m *. c.Wsn_net.Generator.height_m /. float_of_int n
  in
  check (Alcotest.float 1.0) "per-node area constant" (area 30) (area 480);
  Alcotest.check_raises "too few nodes"
    (Invalid_argument "Scale_scenario.config: need at least 2 nodes") (fun () ->
      ignore (SS.config ~n_nodes:1))

module AT = Wsn_workload.Scenarios.Admission_trace

let qcheck_admission_trace_deterministic =
  QCheck.Test.make ~name:"admission trace is a pure function of its seed" ~count:25
    QCheck.(int_bound 100_000)
    (fun s ->
      let seed = Int64.of_int s in
      AT.generate ~n_ops:60 ~seed () = AT.generate ~n_ops:60 ~seed ())

(* The trace generator only emits a release when flows are live, and
   draws the index below the live count — so replayed against a server
   that accepts every admit, every release resolves to a prior admit. *)
let qcheck_admission_trace_releases_match =
  QCheck.Test.make ~name:"every release names a previously admitted live flow"
    ~count:50
    QCheck.(int_bound 100_000)
    (fun s ->
      let trace = AT.generate ~n_ops:120 ~seed:(Int64.of_int s) () in
      let live = ref 0 in
      List.for_all
        (function
          | AT.Admit _ ->
              incr live;
              true
          | AT.Release_nth k ->
              let ok = k >= 0 && k < !live in
              decr live;
              ok
          | AT.Query _ -> true)
        trace)

let suite =
  [
    Alcotest.test_case "scenario I structure" `Quick test_scenario_i_structure;
    Alcotest.test_case "scenario I background" `Quick test_scenario_i_background;
    Alcotest.test_case "scenario I formulas" `Quick test_scenario_i_formulas;
    Alcotest.test_case "scenario II structure" `Quick test_scenario_ii_structure;
    Alcotest.test_case "random scenario deterministic" `Quick test_random_scenario_deterministic;
    Alcotest.test_case "random scenario seed matters" `Quick test_random_scenario_seed_matters;
    Alcotest.test_case "random scenario paper shape" `Quick test_random_scenario_paper_shape;
    Alcotest.test_case "random scenario custom" `Quick test_random_scenario_custom;
    Alcotest.test_case "scale scenario deterministic" `Quick test_scale_scenario_deterministic;
    Alcotest.test_case "scale scenario connected and scaled" `Slow
      test_scale_scenario_connected_and_scaled;
    Alcotest.test_case "scale scenario constant density" `Quick
      test_scale_scenario_constant_density;
    QCheck_alcotest.to_alcotest qcheck_admission_trace_deterministic;
    QCheck_alcotest.to_alcotest qcheck_admission_trace_releases_match;
  ]
