(* Tests for Wsn_mac: event queue, DCF config, and the CSMA/CA
   simulator on scenarios with known answers. *)

module Event_queue = Wsn_mac.Event_queue
module Dcf_config = Wsn_mac.Dcf_config
module Sim = Wsn_mac.Sim
module Point = Wsn_net.Point
module Topology = Wsn_net.Topology
module Digraph = Wsn_graph.Digraph

let check = Alcotest.check

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:30 "c";
  Event_queue.schedule q ~time:10 "a";
  Event_queue.schedule q ~time:20 "b";
  check Alcotest.int "size" 3 (Event_queue.size q);
  check (Alcotest.option Alcotest.int) "next time" (Some 10) (Event_queue.next_time q);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "ordered drain"
    [ (10, "a"); (20, "b"); (30, "c") ]
    (Event_queue.pop_until q ~time:100);
  check Alcotest.bool "empty after drain" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:5 "first";
  Event_queue.schedule q ~time:5 "second";
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "insertion order on ties"
    [ (5, "first"); (5, "second") ]
    (Event_queue.pop_until q ~time:5)

let test_event_queue_pop_until_partial () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.schedule q ~time:t t) [ 1; 5; 9 ];
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "partial drain"
    [ (1, 1); (5, 5) ]
    (Event_queue.pop_until q ~time:5);
  check Alcotest.int "one left" 1 (Event_queue.size q)

let test_event_queue_validation () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time" (Invalid_argument "Event_queue.schedule: negative time")
    (fun () -> Event_queue.schedule q ~time:(-1) ())

let qcheck_event_queue_sorted =
  QCheck.Test.make ~name:"event queue drains in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.schedule q ~time:t t) times;
      let drained = List.map fst (Event_queue.pop_until q ~time:10_000) in
      drained = List.sort compare times)

let test_dcf_config () =
  let c = Dcf_config.default in
  check Alcotest.int "difs slots" 4 (Dcf_config.difs_slots c);
  (* 12000 bits at 54 Mbps = 222.2 us -> 25 slots of 9 us. *)
  check Alcotest.int "tx slots at 54" 25 (Dcf_config.tx_slots c ~rate_mbps:54.0);
  check Alcotest.int "tx slots at 6" 223 (Dcf_config.tx_slots c ~rate_mbps:6.0);
  Alcotest.check_raises "bad rate" (Invalid_argument "Dcf_config.tx_slots: non-positive rate")
    (fun () -> ignore (Dcf_config.tx_slots c ~rate_mbps:0.0))

(* --- simulator ------------------------------------------------------ *)

let pair_topology () =
  Topology.create [| Point.make 0.0 0.0; Point.make 50.0 0.0 |]

let the_link topo s d =
  match Digraph.find_edge (Topology.graph topo) ~src:s ~dst:d with
  | Some e -> e.Digraph.id
  | None -> Alcotest.fail "missing link"

let test_sim_no_traffic_fully_idle () =
  let topo = pair_topology () in
  let stats = Sim.run topo ~flows:[] ~duration_us:100_000 in
  Array.iter (fun idle -> check (Alcotest.float 1e-9) "fully idle" 1.0 idle) stats.Sim.node_idleness;
  check Alcotest.int "nothing sent" 0 stats.Sim.frames_sent

let test_sim_light_load_delivers () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let stats = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 2.0 } ] ~duration_us:1_000_000 in
  let f = stats.Sim.flows.(0) in
  check Alcotest.bool "goodput near offered" true (Float.abs (f.Sim.delivered_mbps -. 2.0) < 0.15);
  check Alcotest.int "no drops" 0 f.Sim.frames_dropped;
  check Alcotest.int "no collisions" 0 stats.Sim.collisions;
  (* Idleness ~ 1 - 2/54 (plus rounding of frame airtime to slots). *)
  let expected_busy = 2.0 /. 54.0 in
  if Float.abs (1.0 -. stats.Sim.node_idleness.(0) -. expected_busy) > 0.02 then
    Alcotest.failf "idleness %f inconsistent with airtime %f" stats.Sim.node_idleness.(0)
      expected_busy

let test_sim_saturation_below_link_rate () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let stats = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 80.0 } ] ~duration_us:1_000_000 in
  let f = stats.Sim.flows.(0) in
  check Alcotest.bool "below PHY rate" true (f.Sim.delivered_mbps < 54.0);
  check Alcotest.bool "but substantial" true (f.Sim.delivered_mbps > 20.0)

let test_sim_two_hop_forwarding () =
  let topo =
    Topology.create [| Point.make 0.0 0.0; Point.make 50.0 0.0; Point.make 100.0 0.0 |]
  in
  let l01 = the_link topo 0 1 and l12 = the_link topo 1 2 in
  let stats =
    Sim.run topo ~flows:[ { Sim.links = [ l01; l12 ]; demand_mbps = 4.0 } ] ~duration_us:1_000_000
  in
  let f = stats.Sim.flows.(0) in
  check Alcotest.bool "end-to-end goodput" true (Float.abs (f.Sim.delivered_mbps -. 4.0) < 0.3)

let test_sim_deterministic () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let flows = [ { Sim.links = [ l ]; demand_mbps = 10.0 } ] in
  let a = Sim.run ~seed:5L topo ~flows ~duration_us:300_000 in
  let b = Sim.run ~seed:5L topo ~flows ~duration_us:300_000 in
  check Alcotest.int "same frames sent" a.Sim.frames_sent b.Sim.frames_sent;
  check (Alcotest.array (Alcotest.float 1e-12)) "same idleness" a.Sim.node_idleness b.Sim.node_idleness

let test_sim_contention_two_senders () =
  (* Two co-located pairs share the channel: each gets roughly half of
     what a lone saturated sender would. *)
  let topo =
    Topology.create
      [| Point.make 0.0 0.0; Point.make 50.0 0.0; Point.make 0.0 50.0; Point.make 50.0 50.0 |]
  in
  let a = the_link topo 0 1 and b = the_link topo 2 3 in
  let stats =
    Sim.run topo
      ~flows:[ { Sim.links = [ a ]; demand_mbps = 80.0 }; { Sim.links = [ b ]; demand_mbps = 80.0 } ]
      ~duration_us:1_000_000
  in
  let d0 = stats.Sim.flows.(0).Sim.delivered_mbps and d1 = stats.Sim.flows.(1).Sim.delivered_mbps in
  check Alcotest.bool "both make progress" true (d0 > 5.0 && d1 > 5.0);
  check Alcotest.bool "rough fairness" true (Float.abs (d0 -. d1) < 0.5 *. (d0 +. d1))

let test_sim_link_idleness_helper () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let stats = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 2.0 } ] ~duration_us:200_000 in
  let expected = Float.min stats.Sim.node_idleness.(0) stats.Sim.node_idleness.(1) in
  check (Alcotest.float 1e-12) "link idleness = min endpoints" expected
    (Sim.link_idleness stats topo l)

let test_sim_route_validation () =
  let topo = pair_topology () in
  Alcotest.check_raises "empty route" (Invalid_argument "Sim: empty route") (fun () ->
      ignore (Sim.run topo ~flows:[ { Sim.links = []; demand_mbps = 1.0 } ] ~duration_us:1000));
  let l01 = the_link topo 0 1 and l10 = the_link topo 1 0 in
  Alcotest.check_raises "broken chain" (Invalid_argument "Sim: route links do not chain")
    (fun () ->
      ignore
        (Sim.run topo ~flows:[ { Sim.links = [ l01; l01 ] ; demand_mbps = 1.0 } ] ~duration_us:1000));
  ignore l10

let suite =
  [
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue fifo ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue partial drain" `Quick test_event_queue_pop_until_partial;
    Alcotest.test_case "event queue validation" `Quick test_event_queue_validation;
    QCheck_alcotest.to_alcotest qcheck_event_queue_sorted;
    Alcotest.test_case "dcf config" `Quick test_dcf_config;
    Alcotest.test_case "sim no traffic" `Quick test_sim_no_traffic_fully_idle;
    Alcotest.test_case "sim light load" `Slow test_sim_light_load_delivers;
    Alcotest.test_case "sim saturation" `Slow test_sim_saturation_below_link_rate;
    Alcotest.test_case "sim two-hop forwarding" `Slow test_sim_two_hop_forwarding;
    Alcotest.test_case "sim deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "sim contention fairness" `Slow test_sim_contention_two_senders;
    Alcotest.test_case "sim link idleness helper" `Quick test_sim_link_idleness_helper;
    Alcotest.test_case "sim route validation" `Quick test_sim_route_validation;
  ]

let test_rts_cts_config () =
  let c = Wsn_mac.Dcf_config.with_rts_cts Wsn_mac.Dcf_config.default in
  check Alcotest.bool "flag set" true c.Wsn_mac.Dcf_config.rts_cts;
  (* 12000/54 + 66 us = 288.2 -> 33 slots (25 without). *)
  check Alcotest.int "overhead added" 33 (Wsn_mac.Dcf_config.tx_slots c ~rate_mbps:54.0)

let test_rts_cts_silences_hidden_terminal () =
  (* Classic hidden-terminal line: A -> B <- C with A and C out of each
     other's carrier-sense range but both within B's.
     A--150m--B--150m--C: d(A,C)=300m > cs range 221m. *)
  let topo =
    Topology.create [| Point.make 0.0 0.0; Point.make 150.0 0.0; Point.make 300.0 0.0 |]
  in
  let ab = the_link topo 0 1 and cb = the_link topo 2 1 in
  let flows =
    [ { Sim.links = [ ab ]; demand_mbps = 4.0 }; { Sim.links = [ cb ]; demand_mbps = 4.0 } ]
  in
  let basic = Sim.run topo ~flows ~duration_us:1_000_000 in
  let rts =
    Sim.run ~config:(Wsn_mac.Dcf_config.with_rts_cts Wsn_mac.Dcf_config.default) topo ~flows
      ~duration_us:1_000_000
  in
  check Alcotest.bool "hidden terminal corrupts without RTS/CTS" true (basic.Sim.collisions > 0);
  check Alcotest.bool "RTS/CTS suppresses most corruption" true
    (rts.Sim.collisions * 4 < basic.Sim.collisions)

let rts_suite =
  [
    Alcotest.test_case "rts/cts config" `Quick test_rts_cts_config;
    Alcotest.test_case "rts/cts hidden terminal" `Slow test_rts_cts_silences_hidden_terminal;
  ]

let suite = suite @ rts_suite

let test_sim_latency_tracking () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let stats = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 2.0 } ] ~duration_us:500_000 in
  let f = stats.Sim.flows.(0) in
  (* One uncontended hop at 54 Mbps: ~222 us airtime + DIFS + backoff;
     latency must land in the few-hundred-microsecond range. *)
  check Alcotest.bool "mean latency plausible" true
    (f.Sim.mean_latency_us > 200.0 && f.Sim.mean_latency_us < 1000.0);
  check Alcotest.bool "p95 >= mean order" true (f.Sim.p95_latency_us >= f.Sim.mean_latency_us -. 50.0)

let test_sim_latency_nan_when_nothing_delivered () =
  let topo = pair_topology () in
  let stats = Sim.run topo ~flows:[ { Sim.links = [ the_link topo 0 1 ]; demand_mbps = 0.0 } ] ~duration_us:50_000 in
  check Alcotest.bool "nan latency" true (Float.is_nan stats.Sim.flows.(0).Sim.mean_latency_us)

let test_sim_latency_grows_under_contention () =
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let light = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 1.0 } ] ~duration_us:500_000 in
  let heavy = Sim.run topo ~flows:[ { Sim.links = [ l ]; demand_mbps = 53.0 } ] ~duration_us:500_000 in
  check Alcotest.bool "queueing delay shows up" true
    (heavy.Sim.flows.(0).Sim.mean_latency_us > light.Sim.flows.(0).Sim.mean_latency_us)

let latency_suite =
  [
    Alcotest.test_case "latency tracking" `Slow test_sim_latency_tracking;
    Alcotest.test_case "latency nan when idle" `Quick test_sim_latency_nan_when_nothing_delivered;
    Alcotest.test_case "latency grows under load" `Slow test_sim_latency_grows_under_contention;
  ]

let suite = suite @ latency_suite

(* --- analytic saturation model (Bianchi) ------------------------------ *)

module Saturation = Wsn_mac.Saturation

let test_saturation_single_station_closed_form () =
  let pred = Saturation.predict ~n_stations:1 ~rate_mbps:54.0 () in
  (* With n = 1: p = 0 and tau = 2 / (W + 1). *)
  check (Alcotest.float 1e-9) "tau closed form" (2.0 /. 17.0) pred.Saturation.tau;
  check (Alcotest.float 1e-9) "no collisions" 0.0 pred.Saturation.collision_probability;
  check Alcotest.bool "below PHY rate" true (pred.Saturation.total_throughput_mbps < 54.0)

let test_saturation_collision_probability_grows () =
  let p n = (Saturation.predict ~n_stations:n ~rate_mbps:54.0 ()).Saturation.collision_probability in
  check Alcotest.bool "monotone in stations" true (p 2 < p 4 && p 4 < p 8)

let test_saturation_validation () =
  Alcotest.check_raises "zero stations"
    (Invalid_argument "Saturation.predict: need at least one station") (fun () ->
      ignore (Saturation.predict ~n_stations:0 ~rate_mbps:54.0 ()));
  Alcotest.check_raises "bad rate" (Invalid_argument "Saturation.predict: non-positive rate")
    (fun () -> ignore (Saturation.predict ~n_stations:1 ~rate_mbps:0.0 ()))

let saturated_sim n_stations =
  (* n co-located sender/receiver pairs; everyone hears everyone. *)
  let positions =
    Array.init (2 * n_stations) (fun i ->
        if i < n_stations then Point.make (float_of_int i *. 2.0) 0.0
        else Point.make (float_of_int (i - n_stations) *. 2.0) 50.0)
  in
  let topo = Topology.create positions in
  let flows =
    List.init n_stations (fun i ->
        match Digraph.find_edge (Topology.graph topo) ~src:i ~dst:(i + n_stations) with
        | Some e -> { Sim.links = [ e.Digraph.id ]; demand_mbps = 80.0 }
        | None -> Alcotest.fail "missing pair link")
  in
  let stats = Sim.run topo ~flows ~duration_us:2_000_000 in
  Array.fold_left (fun acc f -> acc +. f.Sim.delivered_mbps) 0.0 stats.Sim.flows

let test_saturation_matches_simulator_single () =
  let predicted = (Saturation.predict ~n_stations:1 ~rate_mbps:54.0 ()).Saturation.total_throughput_mbps in
  let simulated = saturated_sim 1 in
  let ratio = simulated /. predicted in
  if ratio < 0.9 || ratio > 1.1 then
    Alcotest.failf "single-station sim %.2f vs analytic %.2f (ratio %.3f)" simulated predicted ratio

let test_saturation_tracks_simulator_trend () =
  (* The analytic model is an approximation of a slightly different MAC
     (no ACKs, finite retries): demand agreement within 35% and the
     same order of magnitude across station counts. *)
  List.iter
    (fun n ->
      let predicted = (Saturation.predict ~n_stations:n ~rate_mbps:54.0 ()).Saturation.total_throughput_mbps in
      let simulated = saturated_sim n in
      let ratio = simulated /. predicted in
      if ratio < 0.75 || ratio > 1.35 then
        Alcotest.failf "n=%d: sim %.2f vs analytic %.2f (ratio %.3f)" n simulated predicted ratio)
    [ 2; 5 ]

let saturation_suite =
  [
    Alcotest.test_case "saturation closed form n=1" `Quick test_saturation_single_station_closed_form;
    Alcotest.test_case "saturation p monotone" `Quick test_saturation_collision_probability_grows;
    Alcotest.test_case "saturation validation" `Quick test_saturation_validation;
    Alcotest.test_case "saturation vs sim (n=1)" `Slow test_saturation_matches_simulator_single;
    Alcotest.test_case "saturation vs sim trend" `Slow test_saturation_tracks_simulator_trend;
  ]

let suite = suite @ saturation_suite

(* --- fast-path parity: run vs run_reference --------------------------- *)

(* The event-driven loop must be byte-identical to the reference, so the
   whole stats record — floats, nans and all — is compared with
   structural [compare] (which, unlike [=], treats nan as equal to
   itself). *)

module Pcg32 = Wsn_prng.Pcg32

let stats_equal a b = compare (a : Sim.stats) (b : Sim.stats) = 0

(* A random scenario derived from one integer: topology (3-8 nodes in a
   350 m box, a per-node x-offset ruling out coincident points), one to
   four flows over random links — extended to two-hop chains when a
   continuation link exists — demands spanning idle to saturated, both
   configs, random sim seed and duration. *)
let random_parity_case case =
  let rng = Pcg32.create (Int64.of_int case) in
  let n = 3 + Pcg32.next_below rng 6 in
  let positions =
    Array.init n (fun i ->
        Point.make
          (Pcg32.uniform rng 0.0 350.0 +. (0.01 *. float_of_int i))
          (Pcg32.uniform rng 0.0 350.0))
  in
  let topo = Topology.create positions in
  let n_links = Topology.n_links topo in
  if n_links = 0 then None
  else begin
    let demands = [| 0.0; 0.5; 2.0; 10.0; 60.0 |] in
    let flows =
      List.init
        (1 + Pcg32.next_below rng 4)
        (fun _ ->
          let l = Pcg32.next_below rng n_links in
          let route =
            if Pcg32.next_below rng 2 = 0 then [ l ]
            else begin
              let dst = (Topology.link topo l).Digraph.dst in
              let cont = ref (-1) in
              for l2 = n_links - 1 downto 0 do
                if (Topology.link topo l2).Digraph.src = dst then cont := l2
              done;
              if !cont >= 0 then [ l; !cont ] else [ l ]
            end
          in
          { Sim.links = route; demand_mbps = demands.(Pcg32.next_below rng 5) })
    in
    let config =
      if Pcg32.next_below rng 2 = 0 then Dcf_config.default
      else Dcf_config.with_rts_cts Dcf_config.default
    in
    let duration_us = 20_000 + Pcg32.next_below rng 60_001 in
    let seed = Int64.of_int (1 + Pcg32.next_below rng 1_000_000) in
    Some (topo, flows, config, duration_us, seed)
  end

let qcheck_fast_matches_reference =
  QCheck.Test.make ~name:"fast sim byte-identical to reference" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun case ->
      match random_parity_case case with
      | None -> true
      | Some (topo, flows, config, duration_us, seed) ->
        stats_equal
          (Sim.run ~config ~seed topo ~flows ~duration_us)
          (Sim.run_reference ~config ~seed topo ~flows ~duration_us))

let qcheck_prepared_sharing_is_pure =
  (* One kernel shared across seeds and both configs changes nothing. *)
  QCheck.Test.make ~name:"shared prepared kernel changes nothing" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun case ->
      match random_parity_case case with
      | None -> true
      | Some (topo, flows, _, duration_us, seed) ->
        let prepared = Sim.prepare topo in
        List.for_all
          (fun config ->
            stats_equal
              (Sim.run ~config ~seed ~prepared topo ~flows ~duration_us)
              (Sim.run ~config ~seed topo ~flows ~duration_us))
          [ Dcf_config.default; Dcf_config.with_rts_cts Dcf_config.default ])

let test_prepared_topology_mismatch () =
  let a = pair_topology () and b = pair_topology () in
  let prepared = Sim.prepare a in
  Alcotest.check_raises "foreign kernel rejected"
    (Invalid_argument "Sim.run: prepared kernel built for a different topology") (fun () ->
      ignore (Sim.run ~prepared b ~flows:[] ~duration_us:1000))

let test_replications_match_sequential () =
  (* At the default single-domain pool; test_parallel re-checks this at
     several pool sizes (domain spawning must wait until after the
     engine suite's forks). *)
  let topo = pair_topology () in
  let l = the_link topo 0 1 in
  let flows = [ { Sim.links = [ l ]; demand_mbps = 10.0 } ] in
  let seeds = [ 1L; 2L; 3L ] in
  let batch = Sim.run_replications ~seeds topo ~flows ~duration_us:200_000 in
  let sequential = List.map (fun seed -> Sim.run ~seed topo ~flows ~duration_us:200_000) seeds in
  check Alcotest.bool "replications = sequential map" true
    (List.for_all2 stats_equal batch sequential)

let test_idle_skip_credits_idleness_exactly () =
  (* With no traffic every slot is skippable; idleness must come out at
     exactly 1.0 — bulk credit, not an approximation.  (The companion
     telemetry test pins mac.slots_skipped = total slots.) *)
  let topo = pair_topology () in
  let stats = Sim.run topo ~flows:[] ~duration_us:90_000 in
  Array.iter
    (fun idle -> check (Alcotest.float 0.0) "exactly fully idle" 1.0 idle)
    stats.Sim.node_idleness;
  (* And with a pause mid-run: one flow whose demand stops generating
     arrivals long before the horizon still matches the reference's
     busy accounting slot for slot. *)
  let l = the_link topo 0 1 in
  let flows = [ { Sim.links = [ l ]; demand_mbps = 0.5 } ] in
  let fast = Sim.run topo ~flows ~duration_us:400_000 in
  let slow = Sim.run_reference topo ~flows ~duration_us:400_000 in
  check (Alcotest.array (Alcotest.float 0.0)) "bulk busy credit exact" slow.Sim.node_idleness
    fast.Sim.node_idleness

let test_event_queue_drain_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.schedule q ~time:t t) [ 4; 1; 9; 1 ];
  let seen = ref [] in
  Event_queue.drain_until q ~time:4 (fun t v -> seen := (t, v) :: !seen);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "drained in order" [ (1, 1); (1, 1); (4, 4) ] (List.rev !seen);
  check Alcotest.int "later event kept" 1 (Event_queue.size q);
  (* Events scheduled from inside the callback at or before the horizon
     are drained by the same call. *)
  let q2 = Event_queue.create () in
  Event_queue.schedule q2 ~time:0 0;
  let hops = ref 0 in
  Event_queue.drain_until q2 ~time:3 (fun t _ ->
      incr hops;
      Event_queue.schedule q2 ~time:(t + 1) 0);
  check Alcotest.int "same-batch reschedules drained" 4 !hops;
  check Alcotest.int "first out of horizon kept" 1 (Event_queue.size q2)

let parity_suite =
  [
    QCheck_alcotest.to_alcotest qcheck_fast_matches_reference;
    QCheck_alcotest.to_alcotest qcheck_prepared_sharing_is_pure;
    Alcotest.test_case "prepared topology mismatch" `Quick test_prepared_topology_mismatch;
    Alcotest.test_case "replications = sequential" `Slow test_replications_match_sequential;
    Alcotest.test_case "idle skip credits idleness" `Quick test_idle_skip_credits_idleness_exactly;
    Alcotest.test_case "event queue drain_until" `Quick test_event_queue_drain_until;
  ]

let suite = suite @ parity_suite
