(* Tests for Wsn_telemetry: registry semantics, histogram quantiles on
   known data, span nesting, JSON snapshot round-trip through a
   hand-rolled parser, and an end-to-end check that solving the paper's
   Scenario II chain leaves solver counters behind. *)

module Registry = Wsn_telemetry.Registry
module Histogram = Wsn_telemetry.Histogram
module Span = Wsn_telemetry.Span
module Export = Wsn_telemetry.Export

let check = Alcotest.check

(* The registry is process-global and the test binary runs many suites;
   every test scrubs its state on the way in and out. *)
let with_registry f =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Registry.set_enabled false;
      Registry.reset ())
    f

(* --- minimal JSON parser (validation + counter extraction) ---------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "JSON parse error at offset %d: %s" !pos msg in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'u' ->
           (* accept and skip the four hex digits *)
           for _ = 1 to 4 do
             advance ();
             match peek () with
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
             | _ -> fail "bad \\u escape"
           done
         | c -> Buffer.add_char buf c);
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> Alcotest.failf "missing JSON member %S" name)
  | _ -> Alcotest.failf "expected object holding %S" name

(* --- registry ------------------------------------------------------- *)

let registry_counters_gauges () =
  with_registry (fun () ->
      let c = Registry.counter "test.counter" in
      Registry.incr c;
      Registry.incr c;
      Registry.add c 40;
      check Alcotest.int "counter accumulates" 42 (Registry.counter_value c);
      check Alcotest.bool "interned handle" true (c == Registry.counter "test.counter");
      let g = Registry.gauge "test.gauge" in
      Registry.set g 3.0;
      Registry.set_max g 2.0;
      check (Alcotest.float 0.0) "set_max keeps high water" 3.0 (Registry.gauge_value g);
      Registry.set_max g 7.5;
      check (Alcotest.float 0.0) "set_max raises" 7.5 (Registry.gauge_value g);
      let h = Registry.histogram "test.hist" in
      Registry.observe h 1.0;
      Registry.observe h 2.0;
      let snap = Registry.snapshot () in
      check Alcotest.int "snapshot counter" 42 (List.assoc "test.counter" snap.Registry.counters);
      let d = List.assoc "test.hist" snap.Registry.histograms in
      check Alcotest.int "snapshot histogram count" 2 d.Registry.count)

let registry_disabled_is_noop () =
  Registry.reset ();
  Registry.set_enabled false;
  let c = Registry.counter "test.disabled" in
  Registry.incr c;
  Registry.add c 10;
  let g = Registry.gauge "test.disabled_gauge" in
  Registry.set g 5.0;
  let h = Registry.histogram "test.disabled_hist" in
  Registry.observe h 1.0;
  check Alcotest.int "disabled counter untouched" 0 (Registry.counter_value c);
  check (Alcotest.float 0.0) "disabled gauge untouched" 0.0 (Registry.gauge_value g);
  let snap = Registry.snapshot () in
  check Alcotest.bool "nothing recorded" true
    (snap.Registry.counters = [] && snap.Registry.gauges = [] && snap.Registry.histograms = [])

(* --- histogram ------------------------------------------------------ *)

let histogram_known_quantiles () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.observe h (float_of_int v)
  done;
  check Alcotest.int "count" 1000 (Histogram.count h);
  check (Alcotest.float 1e-9) "min" 1.0 (Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 1000.0 (Histogram.max_value h);
  check (Alcotest.float 1e-6) "sum" 500500.0 (Histogram.sum h);
  (* Log-scale buckets are a factor 10^0.1 wide: quantiles are accurate
     to ~13% relative error. *)
  let within q expected =
    let got = Histogram.quantile h q in
    if Float.abs (got -. expected) > 0.13 *. expected then
      Alcotest.failf "q%.2f: got %g, want %g +-13%%" q got expected
  in
  within 0.50 500.0;
  within 0.90 900.0;
  within 0.99 990.0;
  check (Alcotest.float 1e-9) "q1 clamps to max" 1000.0 (Histogram.quantile h 1.0)

let histogram_edge_cases () =
  let h = Histogram.create () in
  check Alcotest.bool "empty quantile is nan" true (Float.is_nan (Histogram.quantile h 0.5));
  (* Constant data reports itself exactly thanks to min/max clamping. *)
  for _ = 1 to 10 do
    Histogram.observe h 7.0
  done;
  check (Alcotest.float 1e-9) "constant p50" 7.0 (Histogram.quantile h 0.5);
  check (Alcotest.float 1e-9) "constant p99" 7.0 (Histogram.quantile h 0.99);
  (* Zero and negative observations land in the underflow bucket. *)
  let z = Histogram.create () in
  Histogram.observe z 0.0;
  Histogram.observe z (-3.0);
  Histogram.observe z 5.0;
  check Alcotest.int "underflow counted" 3 (Histogram.count z);
  check (Alcotest.float 1e-9) "underflow p50 is 0" 0.0 (Histogram.quantile z 0.5)

let histogram_percentiles () =
  let h = Histogram.create () in
  check Alcotest.bool "empty percentile is nan" true (Float.is_nan (Histogram.percentile h 50.0));
  for v = 1 to 1000 do
    Histogram.observe h (float_of_int v)
  done;
  check (Alcotest.float 1e-9) "p50 = quantile 0.5" (Histogram.quantile h 0.5)
    (Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "p99 = quantile 0.99" (Histogram.quantile h 0.99)
    (Histogram.percentile h 99.0);
  check (Alcotest.float 1e-9) "p100 clamps to max" 1000.0 (Histogram.percentile h 100.0);
  (* p0 lands in the lowest non-empty bucket; its geometric-midpoint
     representative sits within one bucket's relative error of the true
     minimum (it is not clamped down to it). *)
  check (Alcotest.float 1e-9) "p0 = quantile 0" (Histogram.quantile h 0.0)
    (Histogram.percentile h 0.0);
  check Alcotest.bool "p0 within lowest-bucket error of min" true
    (let p0 = Histogram.percentile h 0.0 in
     p0 >= 1.0 && p0 <= 10.0 ** (1.0 /. 10.0));
  Alcotest.check_raises "out of range raises"
    (Invalid_argument "Histogram.percentile: percentile must be in [0, 100]") (fun () ->
      ignore (Histogram.percentile h 101.0));
  (* The registry accessor reads the same figures through the handle's
     lock, without exporting a snapshot. *)
  with_registry (fun () ->
      let rh = Registry.histogram "percentile.test" in
      check Alcotest.int "empty count" 0 (Registry.histogram_count rh);
      Registry.observe rh 10.0;
      Registry.observe rh 20.0;
      Registry.observe rh 30.0;
      check Alcotest.int "count" 3 (Registry.histogram_count rh);
      let p50 = Registry.histogram_percentile rh 50.0 in
      let p100 = Registry.histogram_percentile rh 100.0 in
      check Alcotest.bool "registry p50 in observed range" true (p50 >= 10.0 && p50 <= 30.0);
      check Alcotest.bool "registry percentiles ordered" true (p50 <= p100);
      (* Bucketed, so p100 is the top bucket's representative clamped
         into the observed range — within one bucket width of the max. *)
      check Alcotest.bool "registry p100 near max" true
        (p100 <= 30.0 && p100 >= 30.0 /. 10.0 ** (1.0 /. 10.0)))

(* --- spans ---------------------------------------------------------- *)

let span_nesting () =
  with_registry (fun () ->
      let saw = ref [] in
      let result =
        Span.with_span "outer" (fun () ->
            saw := Span.current () :: !saw;
            let x =
              Span.with_span "inner" (fun () ->
                  saw := Span.current () :: !saw;
                  21)
            in
            x * 2)
      in
      check Alcotest.int "value threads through" 42 result;
      check Alcotest.int "stack empty after" 0 (Span.depth ());
      check
        (Alcotest.list (Alcotest.list Alcotest.string))
        "stacks seen inside" [ [ "inner"; "outer" ]; [ "outer" ] ] !saw;
      let snap = Registry.snapshot () in
      let outer = List.assoc "outer" snap.Registry.spans in
      let inner = List.assoc "inner" snap.Registry.spans in
      check Alcotest.int "outer count" 1 outer.Registry.count;
      check Alcotest.int "inner count" 1 inner.Registry.count;
      check Alcotest.bool "outer encloses inner" true (outer.Registry.sum >= inner.Registry.sum))

let span_exception_unwinds () =
  with_registry (fun () ->
      (try Span.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
      check Alcotest.int "stack unwound" 0 (Span.depth ());
      let snap = Registry.snapshot () in
      check Alcotest.int "failed span still recorded" 1
        (List.assoc "boom" snap.Registry.spans).Registry.count)

let span_disabled_passthrough () =
  Registry.reset ();
  Registry.set_enabled false;
  check Alcotest.int "disabled span runs body" 5 (Span.with_span "off" (fun () -> 5));
  check Alcotest.int "no stack when disabled"
    0 (Span.depth ());
  let snap = Registry.snapshot () in
  check Alcotest.bool "no span recorded" true (snap.Registry.spans = [])

(* --- JSON export ---------------------------------------------------- *)

let json_roundtrip () =
  with_registry (fun () ->
      Registry.add (Registry.counter "a.count") 7;
      Registry.set (Registry.gauge "a.gauge") 2.5;
      Registry.set (Registry.gauge "a.nan_gauge") nan;
      let h = Registry.histogram "a.hist \"quoted\\name\"" in
      Registry.observe h 10.0;
      Registry.observe h 1000.0;
      ignore (Span.with_span "a.span" (fun () -> ()));
      let snap = Registry.snapshot () in
      let json = Export.to_json snap in
      let parsed = parse_json json in
      (match member "a.count" (member "counters" parsed) with
       | Num v -> check (Alcotest.float 0.0) "counter value" 7.0 v
       | _ -> Alcotest.fail "counter not a number");
      (match member "a.nan_gauge" (member "gauges" parsed) with
       | Null -> ()
       | _ -> Alcotest.fail "nan must encode as null");
      let hist = member "a.hist \"quoted\\name\"" (member "histograms" parsed) in
      (match (member "count" hist, member "min" hist, member "max" hist) with
       | Num c, Num lo, Num hi ->
         check (Alcotest.float 0.0) "hist count" 2.0 c;
         check (Alcotest.float 1e-9) "hist min" 10.0 lo;
         check (Alcotest.float 1e-9) "hist max" 1000.0 hi
       | _ -> Alcotest.fail "hist stats not numbers");
      match member "a.span" (member "spans" parsed) with
      | Obj _ -> ()
      | _ -> Alcotest.fail "span stats missing")

let json_empty_snapshot () =
  Registry.reset ();
  let json = Export.to_json (Registry.snapshot ()) in
  match parse_json json with
  | Obj fields ->
    check
      (Alcotest.list Alcotest.string)
      "sections present"
      [ "counters"; "gauges"; "histograms"; "spans" ]
      (List.map fst fields)
  | _ -> Alcotest.fail "expected object"

(* --- integration: Scenario II chain leaves solver telemetry --------- *)

let scenario_ii_counts_pivots () =
  with_registry (fun () ->
      let module S2 = Wsn_workload.Scenarios.Scenario_ii in
      let r = Wsn_availbw.Path_bandwidth.path_capacity S2.model ~path:S2.path in
      check (Alcotest.float 1e-4) "still the paper optimum" 16.2
        r.Wsn_availbw.Path_bandwidth.bandwidth_mbps;
      let snap = Registry.snapshot () in
      let counter name =
        match List.assoc_opt name snap.Registry.counters with Some v -> v | None -> 0
      in
      check Alcotest.bool "lp.pivots > 0" true (counter "lp.pivots" > 0);
      check Alcotest.bool "lp.solves > 0" true (counter "lp.solves" > 0);
      check Alcotest.bool "colgen.columns > 0" true (counter "colgen.columns" > 0);
      check Alcotest.bool "colgen.lp_resolves > 0" true (counter "colgen.lp_resolves" > 0);
      let solve = List.assoc "lp.solve" snap.Registry.spans in
      check Alcotest.bool "lp.solve latency recorded" true
        (solve.Registry.count > 0 && solve.Registry.sum > 0.0))

(* --- integration: MAC fast path reports skip and activity metrics --- *)

let mac_sim_skip_metrics () =
  with_registry (fun () ->
      let module Sim = Wsn_mac.Sim in
      let module Dcf = Wsn_mac.Dcf_config in
      let topo = Wsn_net.Builders.chain ~spacing_m:50.0 2 in
      (* No traffic: every slot is skipped, and the bulk credit must be
         exact — the counter equals the slot horizon. *)
      let stats = Sim.run topo ~flows:[] ~duration_us:90_000 in
      let total_slots = stats.Sim.duration_us / Dcf.default.Dcf.slot_us in
      let counter name =
        let snap = Registry.snapshot () in
        match List.assoc_opt name snap.Registry.counters with Some v -> v | None -> 0
      in
      check Alcotest.int "all slots skipped when idle" total_slots (counter "mac.slots_skipped");
      (* Light traffic: some slots skip, some run, and the active-station
         histogram records the transmission on/off transitions. *)
      let route = Wsn_net.Builders.chain_hop_links topo in
      let skipped_before = counter "mac.slots_skipped" in
      let stats = Sim.run topo ~flows:[ { Sim.links = route; demand_mbps = 2.0 } ] ~duration_us:200_000 in
      check Alcotest.bool "delivered something" true (stats.Sim.flows.(0).Sim.frames_delivered > 0);
      check Alcotest.bool "still skips between frames" true
        (counter "mac.slots_skipped" > skipped_before);
      let snap = Registry.snapshot () in
      let dist = List.assoc "mac.active_stations" snap.Registry.histograms in
      check Alcotest.bool "active-station samples recorded" true (dist.Registry.count > 0);
      check (Alcotest.float 1e-9) "single sender peaks at one station" 1.0 dist.Registry.max_v)

(* --- domain safety: concurrent increments must not be lost ----------- *)

let two_domain_hammer () =
  with_registry (fun () ->
      let n = 100_000 in
      let c = Registry.counter "hammer.count" in
      let g = Registry.gauge "hammer.max" in
      let h = Registry.histogram "hammer.obs" in
      let work lo =
        for i = lo to lo + n - 1 do
          Registry.incr c;
          Registry.set_max g (float_of_int i);
          if i land 1023 = 0 then Registry.observe h (float_of_int i)
        done
      in
      (* One spawned domain plus this one, hammering the same
         instruments: atomics must not lose increments, the CAS max
         must win over any interleaving, and the mutexed histogram
         must record every observation. *)
      let d = Domain.spawn (fun () -> work 0) in
      work n;
      Domain.join d;
      check Alcotest.int "no lost increments" (2 * n) (Registry.counter_value c);
      check (Alcotest.float 0.0) "set_max saw the global max"
        (float_of_int ((2 * n) - 1))
        (Registry.gauge_value g);
      let snap = Registry.snapshot () in
      let dist = List.assoc "hammer.obs" snap.Registry.histograms in
      check Alcotest.int "no lost observations" (2 * ((n + 1023) / 1024)) dist.Registry.count)

let suite =
  [
    Alcotest.test_case "registry counters and gauges" `Quick registry_counters_gauges;
    Alcotest.test_case "registry disabled is a no-op" `Quick registry_disabled_is_noop;
    Alcotest.test_case "histogram quantiles on known data" `Quick histogram_known_quantiles;
    Alcotest.test_case "histogram edge cases" `Quick histogram_edge_cases;
    Alcotest.test_case "percentile accessors" `Quick histogram_percentiles;
    Alcotest.test_case "span nesting" `Quick span_nesting;
    Alcotest.test_case "span exception unwinds" `Quick span_exception_unwinds;
    Alcotest.test_case "span disabled passthrough" `Quick span_disabled_passthrough;
    Alcotest.test_case "json snapshot round-trips" `Quick json_roundtrip;
    Alcotest.test_case "json empty snapshot" `Quick json_empty_snapshot;
    Alcotest.test_case "scenario II solve counts pivots" `Quick scenario_ii_counts_pivots;
    Alcotest.test_case "mac sim skip metrics" `Quick mac_sim_skip_metrics;
  ]

(* Registered separately, after the engine suite: spawning a domain
   forbids Unix.fork for the rest of the process (OCaml 5), and the
   engine suite forks. *)
let domain_suite = [ Alcotest.test_case "two-domain hammer" `Quick two_domain_hammer ]
