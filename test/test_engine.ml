(* Wsn_engine: spec/grid codecs, the forked pool's determinism, cache
   and journal behaviour, fault isolation, and byte-identity of the
   engine's Fig. 3 path with the direct e3 path. *)

module Spec = Wsn_engine.Spec
module Grid = Wsn_engine.Grid
module Cache = Wsn_engine.Cache
module Journal = Wsn_engine.Journal
module Pool = Wsn_engine.Pool
module Sweep = Wsn_engine.Sweep
module Sweep_jobs = Wsn_experiments.Sweep_jobs
module Fig3 = Wsn_experiments.Fig3

let check = Alcotest.check

let tmp_counter = ref 0

(* A fresh scratch directory per call, removed by the caller only if it
   cares; the OS temp dir is fine for test residue. *)
let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wsn-engine-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let spec ?(kind = "fig3") ?(seed = 1L) ?(n_flows = 2) ?(demand = 2.0) ?(metric = "hop-count") () =
  Spec.make ~kind ~seed ~n_flows ~demand_mbps:demand ~metric

(* --- spec ----------------------------------------------------------- *)

let test_spec_roundtrip () =
  let s = spec ~seed:42L ~n_flows:8 ~demand:2.5 ~metric:"average-e2eD" () in
  let line = Spec.canonical s in
  check Alcotest.string "canonical shape"
    "kind=fig3 seed=42 n_flows=8 demand=0x1.4p+1 metric=average-e2eD" line;
  (match Spec.of_canonical line with
   | Ok s' -> check Alcotest.bool "roundtrip" true (Spec.equal s s')
   | Error msg -> Alcotest.fail msg);
  check Alcotest.string "hash is canonical md5" (Digest.to_hex (Digest.string line)) (Spec.hash s);
  (match Spec.of_canonical "kind=fig3 seed=x n_flows=8 demand=2 metric=m" with
   | Ok _ -> Alcotest.fail "bad seed accepted"
   | Error _ -> ());
  match Spec.make ~kind:"no spaces" ~seed:1L ~n_flows:1 ~demand_mbps:1.0 ~metric:"m" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind with a space accepted"

let test_grid_parse () =
  let ok s = match Grid.parse_range s with Ok v -> v | Error m -> Alcotest.fail m in
  check (Alcotest.list Alcotest.int64) "span" [ 1L; 2L; 3L; 4L ] (ok "1..4");
  check (Alcotest.list Alcotest.int64) "single" [ 30L ] (ok "30");
  check (Alcotest.list Alcotest.int64) "mixed order kept" [ 5L; 1L; 2L; 9L ] (ok "5,1..2,9");
  List.iter
    (fun bad ->
      match Grid.parse_range bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "a"; "3..1"; "1.."; "1...4"; "1,,2" ];
  let specs =
    Grid.specs ~kind:"fig3" ~seeds:[ 1L; 2L ] ~metrics:[ "a"; "b" ] ~n_flows:2 ~demand_mbps:2.0
  in
  check (Alcotest.list Alcotest.string) "seed-major order"
    [ "1/a"; "1/b"; "2/a"; "2/b" ]
    (List.map (fun (s : Spec.t) -> Printf.sprintf "%Ld/%s" s.Spec.seed s.Spec.metric) specs)

(* --- journal codec -------------------------------------------------- *)

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let entries =
    [
      { Journal.hash = "abc"; spec = "kind=fig3 seed=1"; status = Journal.Ok_done; attempts = 1;
        cached = false; error = "" };
      { Journal.hash = "def"; spec = "kind=fail seed=2"; status = Journal.Failed; attempts = 3;
        cached = false; error = "Failure(\"boom\")\nwith a newline" };
      { Journal.hash = "ghi"; spec = "kind=sleep seed=3"; status = Journal.Timed_out; attempts = 2;
        cached = true; error = "timed out" };
    ]
  in
  Out_channel.with_open_bin path (fun oc -> List.iter (Journal.append oc) entries);
  (* A torn final line (crash mid-append) must not break loading. *)
  Out_channel.with_open_gen [ Open_append ] 0o644 path (fun oc ->
      Out_channel.output_string oc "{\"hash\":\"to");
  let loaded = Journal.load path in
  check Alcotest.int "all intact lines load" 3 (List.length loaded);
  List.iter2
    (fun (e : Journal.entry) (l : Journal.entry) ->
      check Alcotest.string "hash" e.Journal.hash l.Journal.hash;
      check Alcotest.string "spec" e.Journal.spec l.Journal.spec;
      check Alcotest.string "status" (Journal.status_to_string e.Journal.status)
        (Journal.status_to_string l.Journal.status);
      check Alcotest.int "attempts" e.Journal.attempts l.Journal.attempts;
      check Alcotest.bool "cached" e.Journal.cached l.Journal.cached;
      check Alcotest.string "error" e.Journal.error l.Journal.error)
    entries loaded

(* --- cache ---------------------------------------------------------- *)

let test_cache_fingerprint () =
  let dir = fresh_dir () in
  let c1 = Cache.create ~fingerprint:"build-1" ~dir () in
  let c2 = Cache.create ~fingerprint:"build-2" ~dir () in
  let s = spec () in
  Cache.store c1 s "payload-v1";
  check (Alcotest.option Alcotest.string) "same fingerprint hits" (Some "payload-v1")
    (Cache.find c1 s);
  check (Alcotest.option Alcotest.string) "new code fingerprint misses" None (Cache.find c2 s);
  check Alcotest.bool "keys differ across fingerprints" true (Cache.key c1 s <> Cache.key c2 s)

(* --- pool + sweep --------------------------------------------------- *)

let fig3_grid ~seeds ~n_flows =
  Grid.specs ~kind:"fig3" ~seeds
    ~metrics:(List.map Wsn_routing.Metrics.name Wsn_routing.Metrics.all)
    ~n_flows ~demand_mbps:2.0

let sweep_cfg ~dir ~workers =
  {
    Sweep.default with
    Sweep.workers;
    retries = 1;
    cache_dir = Some (Filename.concat dir "cache");
    out = Some (Filename.concat dir (Printf.sprintf "results-j%d.jsonl" workers));
    journal = Some (Filename.concat dir (Printf.sprintf "journal-j%d.jsonl" workers));
  }

let test_determinism_and_cache () =
  let specs = fig3_grid ~seeds:[ 1L; 2L ] ~n_flows:2 in
  (* Fresh caches: -j1 and -j4 must produce byte-identical results. *)
  let d1 = fresh_dir () and d4 = fresh_dir () in
  let cfg1 = sweep_cfg ~dir:d1 ~workers:1 and cfg4 = sweep_cfg ~dir:d4 ~workers:4 in
  let _, s1 = Sweep.run cfg1 ~runner:Sweep_jobs.runner specs in
  let _, s4 = Sweep.run cfg4 ~runner:Sweep_jobs.runner specs in
  check Alcotest.int "j1 all ok" 6 s1.Sweep.ok;
  check Alcotest.int "j4 all ok" 6 s4.Sweep.ok;
  check Alcotest.int "j1 nothing cached" 0 s1.Sweep.cached;
  let bytes1 = read_file (Option.get cfg1.Sweep.out) in
  check Alcotest.string "results byte-identical for -j1 vs -j4" bytes1
    (read_file (Option.get cfg4.Sweep.out));
  (* Journals are permutations of the same completion records. *)
  let key (e : Journal.entry) =
    Printf.sprintf "%s %s %d" e.Journal.hash (Journal.status_to_string e.Journal.status)
      e.Journal.attempts
  in
  check (Alcotest.list Alcotest.string) "journals equal as sets"
    (List.sort compare (List.map key (Journal.load (Option.get cfg1.Sweep.journal))))
    (List.sort compare (List.map key (Journal.load (Option.get cfg4.Sweep.journal))));
  (* Second run over the same cache: 100% hits, same bytes. *)
  let cfg_warm =
    { cfg4 with Sweep.out = Some (Filename.concat d4 "results-warm.jsonl") }
  in
  let _, warm = Sweep.run cfg_warm ~runner:Sweep_jobs.runner specs in
  check Alcotest.int "warm run ok" 6 warm.Sweep.ok;
  check Alcotest.int "warm run 100% cached" 6 warm.Sweep.cached;
  check Alcotest.string "warm results byte-identical" bytes1
    (read_file (Option.get cfg_warm.Sweep.out))

let outcome_label (r : Pool.result) =
  match r.Pool.outcome with
  | Pool.Done _ -> "ok"
  | Pool.Failed Pool.Timeout -> "timeout"
  | Pool.Failed (Pool.Signalled _) -> "signalled"
  | Pool.Failed (Pool.Exn _) -> "failed"

let test_fault_injection_fail () =
  (* A deterministically-raising job is retried the configured number
     of times, lands in the journal as failed, and neither blocks its
     siblings nor poisons the cache. *)
  let dir = fresh_dir () in
  let ok1 = spec ~seed:1L () in
  let bad = spec ~kind:"fail" ~seed:2L () in
  let ok2 = spec ~seed:3L () in
  let cfg = { (sweep_cfg ~dir ~workers:2) with Sweep.retries = 2 } in
  let results, summary = Sweep.run cfg ~runner:Sweep_jobs.runner [ ok1; bad; ok2 ] in
  check (Alcotest.list Alcotest.string) "siblings unaffected" [ "ok"; "failed"; "ok" ]
    (List.map outcome_label results);
  check Alcotest.int "one failure" 1 summary.Sweep.failed;
  let bad_result = List.nth results 1 in
  check Alcotest.int "1 + 2 retries attempts" 3 bad_result.Pool.attempts;
  check Alcotest.int "2 retries counted" 2 summary.Sweep.retries_used;
  (match bad_result.Pool.outcome with
   | Pool.Failed (Pool.Exn msg) ->
     check Alcotest.bool "failure message surfaced" true (contains ~sub:"injected failure" msg)
   | _ -> Alcotest.fail "expected Exn failure");
  let journal = Journal.last_by_hash (Journal.load (Option.get cfg.Sweep.journal)) in
  (match Hashtbl.find_opt journal (Spec.hash bad) with
   | Some e ->
     check Alcotest.string "journalled failed" "failed" (Journal.status_to_string e.Journal.status);
     check Alcotest.int "journalled attempts" 3 e.Journal.attempts
   | None -> Alcotest.fail "failed job missing from journal");
  (* The cache holds the two successes and nothing for the failure. *)
  let cache = Cache.create ~dir:(Filename.concat dir "cache") () in
  check Alcotest.bool "ok cached" true (Cache.find cache ok1 <> None);
  check (Alcotest.option Alcotest.string) "failure not cached" None (Cache.find cache bad)

let test_fault_injection_crash_and_timeout () =
  (* kind=crash raises SIGSEGV inside the worker; kind=sleep outlives
     the timeout.  Both must fail only their own job. *)
  let dir = fresh_dir () in
  let ok = spec ~seed:1L () in
  let crash = spec ~kind:"crash" ~seed:2L () in
  let slow = spec ~kind:"sleep" ~seed:3L ~demand:30.0 () in
  let cfg =
    { (sweep_cfg ~dir ~workers:3) with Sweep.retries = 1; timeout_s = 0.3 }
  in
  let results, summary = Sweep.run cfg ~runner:Sweep_jobs.runner [ ok; crash; slow ] in
  check (Alcotest.list Alcotest.string) "isolated failures" [ "ok"; "signalled"; "timeout" ]
    (List.map outcome_label results);
  check Alcotest.int "two failures" 2 summary.Sweep.failed;
  check Alcotest.int "both jobs retried once" 2 summary.Sweep.retries_used;
  let journal = Journal.last_by_hash (Journal.load (Option.get cfg.Sweep.journal)) in
  (match Hashtbl.find_opt journal (Spec.hash slow) with
   | Some e ->
     check Alcotest.string "timeout journalled" "timeout"
       (Journal.status_to_string e.Journal.status);
     check Alcotest.int "timeout attempts" 2 e.Journal.attempts
   | None -> Alcotest.fail "timeout missing from journal");
  match Hashtbl.find_opt journal (Spec.hash crash) with
  | Some e ->
    check Alcotest.string "crash journalled" "failed" (Journal.status_to_string e.Journal.status)
  | None -> Alcotest.fail "crash missing from journal"

let test_resume_skips_failed () =
  let dir = fresh_dir () in
  let specs = [ spec ~seed:1L (); spec ~kind:"fail" ~seed:2L (); spec ~seed:3L () ] in
  let cfg = sweep_cfg ~dir ~workers:2 in
  let _, first = Sweep.run cfg ~runner:Sweep_jobs.runner specs in
  check Alcotest.int "first pass: one failure" 1 first.Sweep.failed;
  (* Resume: successes come back from the cache, the failure is
     reported from the journal without re-running (attempts preserved),
     and the journal gains no new lines for it. *)
  let lines_before = List.length (Journal.load (Option.get cfg.Sweep.journal)) in
  let cfg_resume = { cfg with Sweep.resume = true } in
  let results, second = Sweep.run cfg_resume ~runner:Sweep_jobs.runner specs in
  check Alcotest.int "resume: still one failure" 1 second.Sweep.failed;
  check Alcotest.int "resume: failure skipped, not re-run" 1 second.Sweep.skipped_failed;
  check Alcotest.int "resume: successes all cached" 2 second.Sweep.cached;
  check Alcotest.int "resume: carried attempts" 2 (List.nth results 1).Pool.attempts;
  check Alcotest.int "resume: no new journal lines for the skip" (lines_before + 2)
    (List.length (Journal.load (Option.get cfg.Sweep.journal)));
  (* retry_failed re-opens it (and it fails again, appending a line). *)
  let cfg_retry = { cfg_resume with Sweep.retry_failed = true } in
  let _, third = Sweep.run cfg_retry ~runner:Sweep_jobs.runner specs in
  check Alcotest.int "retry-failed re-runs" 0 third.Sweep.skipped_failed;
  check Alcotest.int "and it still fails" 1 third.Sweep.failed

let test_inprocess_matches_forked () =
  (* workers=0 (in-process) must produce the same payloads as the
     forked pool — it is the embedded/aggregate path. *)
  let specs = fig3_grid ~seeds:[ 5L ] ~n_flows:2 in
  let payloads workers =
    List.map
      (fun (r : Pool.result) ->
        match r.Pool.outcome with Pool.Done p -> p | Pool.Failed _ -> "FAILED")
      (Pool.run ~workers ~runner:Sweep_jobs.runner specs)
  in
  check (Alcotest.list Alcotest.string) "in-process == forked" (payloads 0) (payloads 2)

let test_fig3_engine_byte_identity () =
  (* The acceptance bar: the engine's sweep path re-renders the e3
     table byte-identically to the direct path, for the paper's real
     grid (seed 30, 8 flows, all metrics). *)
  let seed = 30L in
  let specs = fig3_grid ~seeds:[ seed ] ~n_flows:8 in
  let results = Pool.run ~workers:2 ~runner:Sweep_jobs.runner specs in
  let pairs =
    List.map
      (fun (r : Pool.result) ->
        match r.Pool.outcome with
        | Pool.Done p -> (r.Pool.spec, p)
        | Pool.Failed f -> Alcotest.failf "job failed: %s" (Pool.failure_to_string f))
      results
  in
  check Alcotest.string "sweep table == e3 render" (Fig3.render (Fig3.compute ~seed ()))
    (Sweep_jobs.table pairs);
  (* And the aggregate means agree with direct recomputation. *)
  let means = Sweep_jobs.mean_admitted pairs in
  let direct = Fig3.compute ~seed () in
  List.iter2
    (fun (m, mean) run ->
      check Alcotest.string "metric order" (Wsn_routing.Metrics.name m) run.Wsn_routing.Admission.label;
      check (Alcotest.float 1e-9) "mean == direct count" (float_of_int (Fig3.admitted_count run)) mean)
    means direct.Fig3.runs

let suite =
  [
    Alcotest.test_case "spec roundtrip + hash" `Quick test_spec_roundtrip;
    Alcotest.test_case "grid parsing" `Quick test_grid_parse;
    Alcotest.test_case "journal roundtrip + torn line" `Quick test_journal_roundtrip;
    Alcotest.test_case "cache fingerprint invalidation" `Quick test_cache_fingerprint;
    Alcotest.test_case "determinism -j1 vs -j4 + warm cache" `Slow test_determinism_and_cache;
    Alcotest.test_case "fault injection: raising job" `Slow test_fault_injection_fail;
    Alcotest.test_case "fault injection: crash + timeout" `Slow test_fault_injection_crash_and_timeout;
    Alcotest.test_case "resume skips failed jobs" `Slow test_resume_skips_failed;
    Alcotest.test_case "in-process matches forked" `Slow test_inprocess_matches_forked;
    Alcotest.test_case "fig3 byte-identity (seed 30)" `Slow test_fig3_engine_byte_identity;
  ]
