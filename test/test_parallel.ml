(* Tests for Wsn_parallel: pool semantics (ordering, exceptions,
   nesting, oversubscription) and the determinism contract — every
   parallelised hot path must produce results identical to the
   sequential run at any domain count. *)

module Pool = Wsn_parallel.Pool
module Model = Wsn_conflict.Model
module Independent = Wsn_conflict.Independent
module Column_gen = Wsn_availbw.Column_gen
module Point = Wsn_net.Point
module Topology = Wsn_net.Topology
module Builders = Wsn_net.Builders
module Pcg32 = Wsn_prng.Pcg32
module Spec = Wsn_engine.Spec

let check = Alcotest.check

(* --- pool semantics ------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let got = Pool.map pool (fun x -> x * x) xs in
      check Alcotest.(array int) "map preserves input order" (Array.map (fun x -> x * x) xs) got;
      check Alcotest.(array int) "empty input" [||] (Pool.map pool (fun x -> x) [||]);
      check Alcotest.(array int) "single item" [| 9 |] (Pool.map pool (fun x -> x * x) [| 3 |]))

let test_map_variants () =
  Pool.with_pool ~domains:3 (fun pool ->
      let xs = Array.init 41 Fun.id in
      let expect = Array.map succ xs in
      check Alcotest.(array int) "chunked_map default chunking" expect (Pool.chunked_map pool succ xs);
      check Alcotest.(array int) "chunked_map explicit chunk_size" expect
        (Pool.chunked_map pool ~chunk_size:5 succ xs);
      check Alcotest.(list int) "map_list" (List.init 17 succ)
        (Pool.map_list pool succ (List.init 17 Fun.id));
      check Alcotest.int "map_reduce sums every item" (41 * 42 / 2)
        (Pool.map_reduce pool ~map:succ ~reduce:( + ) ~init:0 xs);
      Alcotest.check_raises "chunk_size 0 rejected"
        (Invalid_argument "Wsn_parallel.Pool.chunked_map: chunk_size must be >= 1") (fun () ->
          ignore (Pool.chunked_map pool ~chunk_size:0 succ xs)))

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "worker exception re-raised in the submitter" (Failure "boom")
        (fun () ->
          ignore (Pool.map pool (fun x -> if x = 57 then failwith "boom" else x) (Array.init 100 Fun.id)));
      (* The failed job is cancelled and cleaned up; the pool stays usable. *)
      check Alcotest.(array int) "pool survives a failed job" [| 0; 2; 4 |]
        (Pool.map pool (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_submit_after_shutdown () =
  let escaped = Pool.with_pool ~domains:2 (fun pool -> pool) in
  Alcotest.check_raises "submission after shutdown rejected"
    (Invalid_argument "Wsn_parallel.Pool: submission after shutdown") (fun () ->
      ignore (Pool.map escaped succ (Array.init 8 Fun.id)))

let test_nested_jobs () =
  (* Inner fan-outs submitted from worker/submitter context: newest-job-
     first scheduling plus caller participation must keep this deadlock
     free even with far more jobs than domains. *)
  Pool.with_pool ~domains:3 (fun pool ->
      let got =
        Pool.map pool
          (fun outer ->
            Array.fold_left ( + ) 0 (Pool.map pool (fun inner -> (outer * 100) + inner) (Array.init 40 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expect = Array.init 6 (fun outer -> (outer * 100 * 40) + (39 * 40 / 2)) in
      check Alcotest.(array int) "nested fan-out" expect got)

let test_oversubscription () =
  (* More domains than cores and many more items than domains. *)
  Pool.with_pool ~domains:8 (fun pool ->
      let xs = Array.init 500 Fun.id in
      check Alcotest.(array int) "oversubscribed pool" (Array.map (fun x -> x * 3) xs)
        (Pool.map pool (fun x -> x * 3) xs))

let test_global_pool () =
  Pool.set_domains 3;
  check Alcotest.int "domains () reflects set_domains" 3 (Pool.domains ());
  check Alcotest.int "global pool sized accordingly" 3 (Pool.size (Pool.global ()));
  check Alcotest.bool "global pool is cached" true (Pool.global () == Pool.global ());
  Pool.set_domains 1;
  check Alcotest.int "back to sequential" 1 (Pool.size (Pool.global ()));
  Alcotest.check_raises "set_domains 0 rejected"
    (Invalid_argument "Wsn_parallel.Pool.set_domains: domains must be >= 1") (fun () ->
      Pool.set_domains 0)

(* --- determinism: parallel == sequential, bit for bit ---------------- *)

(* Each arm builds a fresh model so one run's kernel memo pool cannot
   serve another's queries: the parallel arm must recompute everything. *)
let random_topology rng ~nodes ~side =
  let positions =
    Array.init nodes (fun _ -> Point.make (Pcg32.uniform rng 0.0 side) (Pcg32.uniform rng 0.0 side))
  in
  Topology.create positions

let at_domains d f =
  Pool.set_domains d;
  Fun.protect ~finally:(fun () -> Pool.set_domains 1) f

let qcheck_enumerate_deterministic =
  QCheck.Test.make ~name:"enumerate_sets identical at 1 and 4 domains" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo = random_topology (Pcg32.create (Int64.of_int seed)) ~nodes:8 ~side:450.0 in
      let universe = List.init (Topology.n_links topo) Fun.id in
      let run d =
        at_domains d (fun () ->
            let model = Model.physical topo in
            try Ok (Independent.enumerate_sets ~max_sets:20_000 model ~universe)
            with Failure m -> Error m)
      in
      run 1 = run 4)

let qcheck_columns_deterministic =
  QCheck.Test.make ~name:"columns identical at 1 and 4 domains" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let topo = random_topology (Pcg32.create (Int64.of_int seed)) ~nodes:7 ~side:400.0 in
      let universe = List.init (Topology.n_links topo) Fun.id in
      let run d =
        at_domains d (fun () ->
            let model = Model.physical topo in
            try Ok (Independent.columns ~max_sets:20_000 model ~universe)
            with Failure m -> Error m)
      in
      run 1 = run 4)

let qcheck_colgen_deterministic =
  (* Warm column generation prices candidates in parallel; optimum,
     column/iteration counts and the witness schedule must all match
     the sequential run exactly. *)
  QCheck.Test.make ~name:"warm colgen identical at 1 and 4 domains" ~count:10
    QCheck.(int_range 6 12)
    (fun n ->
      let run d =
        at_domains d (fun () ->
            let topo = Builders.chain ~spacing_m:55.0 n in
            let model = Model.physical topo in
            let r = Column_gen.path_capacity ~warm:true model ~path:(Builders.chain_hop_links topo) in
            ( r.Column_gen.bandwidth_mbps,
              r.Column_gen.columns_generated,
              r.Column_gen.iterations,
              Wsn_sched.Schedule.slots r.Column_gen.schedule ))
      in
      run 1 = run 4)

let qcheck_fig3_payload_deterministic =
  (* The whole sweep payload — admission under every metric — through
     the real job runner. *)
  QCheck.Test.make ~name:"fig3 payload identical at 1 and 4 domains" ~count:5
    QCheck.(int_bound 1_000)
    (fun seed ->
      let spec =
        Spec.make ~kind:"fig3" ~seed:(Int64.of_int seed) ~n_flows:2 ~demand_mbps:2.0
          ~metric:(Wsn_routing.Metrics.name (List.hd Wsn_routing.Metrics.all))
      in
      let run d = at_domains d (fun () -> Wsn_experiments.Sweep_jobs.runner spec) in
      String.equal (run 1) (run 4))

let qcheck_mac_replications_deterministic =
  (* The MAC simulator's replication fan-out, including the shared
     prepared kernel, must match the sequential map bit for bit. *)
  QCheck.Test.make ~name:"mac replications identical at 1 and 4 domains" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let module Sim = Wsn_mac.Sim in
      let topo = Builders.chain ~spacing_m:55.0 5 in
      let flows =
        [ { Sim.links = Builders.chain_hop_links topo; demand_mbps = 4.0 } ]
      in
      let seeds = List.init 6 (fun i -> Int64.of_int (seed + i + 1)) in
      let run d =
        at_domains d (fun () ->
            let prepared = Sim.prepare topo in
            Sim.run_replications ~prepared ~seeds topo ~flows ~duration_us:100_000)
      in
      compare (run 1) (run 4) = 0)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map variants" `Quick test_map_variants;
    Alcotest.test_case "exception propagates and cancels" `Quick test_exception_propagates;
    Alcotest.test_case "submission after shutdown" `Quick test_submit_after_shutdown;
    Alcotest.test_case "nested jobs" `Quick test_nested_jobs;
    Alcotest.test_case "oversubscription" `Quick test_oversubscription;
    Alcotest.test_case "global pool lifecycle" `Quick test_global_pool;
    QCheck_alcotest.to_alcotest qcheck_enumerate_deterministic;
    QCheck_alcotest.to_alcotest qcheck_columns_deterministic;
    QCheck_alcotest.to_alcotest qcheck_colgen_deterministic;
    QCheck_alcotest.to_alcotest qcheck_fig3_payload_deterministic;
    QCheck_alcotest.to_alcotest qcheck_mac_replications_deterministic;
  ]
