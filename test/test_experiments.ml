(* Integration tests: the experiment drivers reproduce the paper's
   numbers and shapes end to end. *)

module E1 = Wsn_experiments.Scenario1
module E2 = Wsn_experiments.Scenario2
module E3 = Wsn_experiments.Fig3
module E4 = Wsn_experiments.Fig4
module E5 = Wsn_experiments.Hypothesis
module E6 = Wsn_experiments.Mac_validation
module Metrics = Wsn_routing.Metrics
module Admission = Wsn_routing.Admission
module Estimators = Wsn_availbw.Estimators

let check = Alcotest.check

let float_tol = Alcotest.float 1e-6

let test_e1_matches_closed_form () =
  List.iter
    (fun (r : E1.row) ->
      check float_tol
        (Printf.sprintf "LP = (1-l)r at %.2f" r.E1.lambda)
        r.E1.closed_form_mbps r.E1.lp_truth_mbps;
      check Alcotest.bool "idle estimate pessimistic" true
        (r.E1.idle_estimate_mbps <= r.E1.lp_truth_mbps +. 1e-9))
    (E1.rows ())

let test_e2_paper_numbers () =
  let r = E2.compute () in
  List.iter
    (fun (name, measured, expected) ->
      check float_tol name expected measured)
    (E2.paper r);
  check Alcotest.bool "eq9 sandwiches" true
    (r.E2.eq9_upper >= r.E2.optimum_mbps -. 1e-6);
  check Alcotest.bool "tdma lower bounds" true (r.E2.tdma_lower <= r.E2.optimum_mbps +. 1e-6)

let test_e3_shape () =
  let t = E3.compute ~seed:30L () in
  let count metric =
    let run = List.find (fun r -> r.Admission.label = Metrics.name metric) t.E3.runs in
    E3.admitted_count run
  in
  let hop = count Metrics.Hop_count in
  let e2etd = count Metrics.E2e_transmission_delay in
  let avg = count Metrics.Average_e2e_delay in
  (* The paper's ordering: average-e2eD admits the most, hop the fewest. *)
  check Alcotest.bool "avg >= e2eTD" true (avg >= e2etd);
  check Alcotest.bool "e2eTD >= hop" true (e2etd >= hop);
  check Alcotest.int "seed-30 hop admissions" 3 hop;
  check Alcotest.int "seed-30 e2eTD admissions" 5 e2etd;
  check Alcotest.int "seed-30 avg admissions" 7 avg

let test_e4_estimator_quality () =
  let t = E4.compute ~seed:30L () in
  check Alcotest.bool "several rows" true (List.length t.E4.rows >= 5);
  let errors = E4.mean_abs_error t in
  List.iter (fun (_, e) -> check Alcotest.bool "finite error" true (Float.is_finite e)) errors;
  (* The paper's headline: background-and-interference-aware estimators
     (Equations 12/13) beat the background-blind clique constraint (11)
     and the interference-blind bottleneck (10). *)
  let err name = List.assoc name errors in
  check Alcotest.bool "eq13 better than eq11" true
    (err "conservative(13)" < err "clique(11)");
  check Alcotest.bool "eq13 better than eq10" true
    (err "conservative(13)" < err "bottleneck(10)");
  check Alcotest.bool "eq12 better than eq10" true (err "min(12)" < err "bottleneck(10)")

let test_e4_estimates_mostly_bracket_truth () =
  (* Clique constraint ignores background: it must never fall below the
     truth by more than noise when background is empty (first flow). *)
  let t = E4.compute ~seed:30L () in
  match t.E4.rows with
  | first :: _ ->
    check Alcotest.bool "first flow: clique >= truth" true
      (first.E4.estimates.Estimators.clique_constraint >= first.E4.truth_mbps -. 1e-6)
  | [] -> Alcotest.fail "expected rows"

let test_e5_finds_violations () =
  let s = E5.run ~n_links:4 ~instances:100 ~seed:11L () in
  check Alcotest.int "instances" 100 s.E5.instances;
  check Alcotest.bool "violations exist" true (s.E5.violations > 0);
  check Alcotest.bool "excess positive" true (s.E5.max_excess > 0.0);
  check Alcotest.bool "mean at least one" true (s.E5.mean_min_max >= 1.0 -. 1e-9)

let test_e5_deterministic () =
  let a = E5.run ~instances:50 ~seed:4L () and b = E5.run ~instances:50 ~seed:4L () in
  check Alcotest.int "same violations" a.E5.violations b.E5.violations;
  check float_tol "same mean" a.E5.mean_min_max b.E5.mean_min_max

let test_e6_smoke () =
  let t = E6.compute ~seed:30L ~duration_us:200_000 () in
  check Alcotest.int "a row per node" 30 (List.length t.E6.rows);
  List.iter
    (fun (r : E6.row) ->
      if r.E6.measured < 0.0 || r.E6.measured > 1.0 then Alcotest.fail "measured out of range";
      if r.E6.analytic < 0.0 || r.E6.analytic > 1.0 then Alcotest.fail "analytic out of range")
    t.E6.rows;
  check Alcotest.bool "background present" true (t.E6.background_delivered <> [])

let test_fig3_sweep_ordering () =
  (* Across seeds, the paper's metric ordering must hold on average.
     The aggregate now runs as an in-process engine grid. *)
  let seeds = List.init 6 (fun i -> Int64.of_int (i + 1)) in
  let means = Wsn_experiments.Sweep_jobs.sweep_seeds ~seeds () in
  let mean m = List.assoc m means in
  check Alcotest.bool "avg-e2eD >= e2eTD >= hop (mean)" true
    (mean Metrics.Average_e2e_delay >= mean Metrics.E2e_transmission_delay
    && mean Metrics.E2e_transmission_delay >= mean Metrics.Hop_count)

let suite =
  [
    Alcotest.test_case "E1 matches closed form" `Quick test_e1_matches_closed_form;
    Alcotest.test_case "E2 paper numbers" `Quick test_e2_paper_numbers;
    Alcotest.test_case "E3 shape (seed 30)" `Slow test_e3_shape;
    Alcotest.test_case "E4 estimator quality" `Slow test_e4_estimator_quality;
    Alcotest.test_case "E4 clique bound over truth" `Slow test_e4_estimates_mostly_bracket_truth;
    Alcotest.test_case "E5 finds violations" `Quick test_e5_finds_violations;
    Alcotest.test_case "E5 deterministic" `Quick test_e5_deterministic;
    Alcotest.test_case "E6 smoke" `Slow test_e6_smoke;
    Alcotest.test_case "fig3 sweep ordering" `Slow test_fig3_sweep_ordering;
  ]

(* --- ablations (E8-E11) ----------------------------------------------- *)

module Ablations = Wsn_experiments.Ablations

let test_e10_quantisation () =
  let rows = Ablations.Quantisation.run ~frames:[ 10; 100 ] () in
  List.iter
    (fun (r : Ablations.Quantisation.row) ->
      (* 0.1/0.3/0.3/0.3 is exactly representable at multiples of 10. *)
      check float_tol (Printf.sprintf "lossless at %d slots" r.frame_slots) 16.2
        r.Ablations.Quantisation.throughput_mbps)
    rows;
  let lossy = Ablations.Quantisation.run ~frames:[ 7 ] () in
  List.iter
    (fun (r : Ablations.Quantisation.row) ->
      check Alcotest.bool "lossy at 7 slots" true (r.Ablations.Quantisation.loss_percent > 0.0))
    lossy

let test_e11_dominance_lossless () =
  let rows = Ablations.Dominance.run ~seed:30L () in
  match rows with
  | [ filtered; unfiltered ] ->
    check Alcotest.bool "filter shrinks" true
      (filtered.Ablations.Dominance.n_columns < unfiltered.Ablations.Dominance.n_columns);
    check float_tol "same optimum" unfiltered.Ablations.Dominance.optimum_mbps
      filtered.Ablations.Dominance.optimum_mbps
  | _ -> Alcotest.fail "two rows expected"

let test_e8_rts_cts_helps () =
  let rows = Ablations.Rts_cts.run ~seed:30L ~duration_us:500_000 () in
  match rows with
  | [ basic; rts ] ->
    check Alcotest.bool "fewer corruptions with RTS/CTS" true
      (rts.Ablations.Rts_cts.collisions <= basic.Ablations.Rts_cts.collisions)
  | _ -> Alcotest.fail "two rows expected"

let test_e9_cs_range_monotone_idleness () =
  let rows = Ablations.Cs_range.run ~seed:30L ~factors:[ 1.0; 2.0 ] () in
  match rows with
  | [ near; far ] ->
    check Alcotest.bool "wider sensing hears more" true
      (far.Ablations.Cs_range.mean_link_idleness <= near.Ablations.Cs_range.mean_link_idleness +. 1e-9)
  | _ -> Alcotest.fail "two rows expected"

let ablation_suite =
  [
    Alcotest.test_case "E10 quantisation" `Quick test_e10_quantisation;
    Alcotest.test_case "E11 dominance lossless" `Slow test_e11_dominance_lossless;
    Alcotest.test_case "E8 rts/cts helps" `Slow test_e8_rts_cts_helps;
    Alcotest.test_case "E9 cs-range idleness" `Slow test_e9_cs_range_monotone_idleness;
  ]

let suite = suite @ ablation_suite

let test_fig4_sweep_pooled_errors () =
  (* Pooled over several seeds the paper's ranking must hold:
     background-aware estimators beat the blind ones. *)
  let seeds = List.init 5 (fun i -> Int64.of_int (i + 1)) in
  let errors = E4.sweep_seeds ~seeds in
  let err name = List.assoc name errors in
  check Alcotest.bool "eq13 beats eq10 pooled" true
    (err "conservative(13)" < err "bottleneck(10)");
  check Alcotest.bool "eq13 beats eq11 pooled" true (err "conservative(13)" < err "clique(11)");
  check Alcotest.bool "eq12 beats eq10 pooled" true (err "min(12)" < err "bottleneck(10)")

let sweep_suite = [ Alcotest.test_case "fig4 pooled errors" `Slow test_fig4_sweep_pooled_errors ]

let suite = suite @ sweep_suite
