(* Tests for Wsn_admission: the JSON layer, protocol parsing, session
   semantics on a small topology, the stdio transport over pipes, and
   the PR's core property — any interleaving of admit/release/query
   deltas answered by the warm incremental path is byte-identical to
   the cold full-recompute reference on the same request stream. *)

module Json = Wsn_admission.Json
module Protocol = Wsn_admission.Protocol
module Session = Wsn_admission.Session
module Server = Wsn_admission.Server
module Trace = Wsn_workload.Scenarios.Admission_trace
module Generator = Wsn_net.Generator
module Model = Wsn_conflict.Model
module Pcg32 = Wsn_prng.Pcg32

let check = Alcotest.check

(* A small connected topology keeps per-case cost low enough for
   QCheck while still exercising multihop routes. *)
let small_config =
  { Generator.n_nodes = 10; width_m = 220.0; height_m = 260.0; max_placement_attempts = 1000 }

let small_world seed =
  let topo = Generator.connected_topology (Pcg32.create seed) small_config in
  (topo, Model.physical topo)

let make_session ?metric ?pricer ?shards mode seed =
  let topo, model = small_world seed in
  Session.create ?metric ?pricer ?shards ~mode ~topo ~model ()

(* --- json ----------------------------------------------------------- *)

let json_roundtrip () =
  let cases =
    [
      {|{"op":"admit","source":3,"target":17,"demand_mbps":1.5}|};
      {|{"a":[1,2.25,-3e2],"b":true,"c":null,"d":"x\"y\\z","e":{}}|};
      {|[]|};
      {|"Aé€"|};
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error msg -> Alcotest.failf "parse %s: %s" s msg
      | Ok v -> (
        (* Round-trip through the printer re-parses to the same value. *)
        match Json.parse (Json.to_string v) with
        | Ok v' -> check Alcotest.bool ("round-trip " ^ s) true (v = v')
        | Error msg -> Alcotest.failf "re-parse %s: %s" (Json.to_string v) msg))
    cases;
  check Alcotest.bool "surrogate pair" true
    (Json.parse {|"😀"|} = Ok (Json.Str "\xf0\x9f\x98\x80"));
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %s" bad
      | Error _ -> ())
    [ "{"; "[1,]"; {|{"a":}|}; "tru"; "1.2.3"; {|{"a":1} x|}; {|"unterminated|} ]

let json_accessors () =
  let v = Result.get_ok (Json.parse {|{"n":4,"f":2.5,"s":"hi","l":[1,2]}|}) in
  check Alcotest.(option int) "int member" (Some 4) Option.(bind (Json.member "n" v) Json.to_int);
  check Alcotest.bool "float member" true (Option.bind (Json.member "f" v) Json.to_float = Some 2.5);
  check Alcotest.bool "non-integral int is None" true
    (Option.bind (Json.member "f" v) Json.to_int = None);
  check Alcotest.(option string) "str member" (Some "hi")
    Option.(bind (Json.member "s" v) Json.to_str);
  check Alcotest.bool "missing member" true (Json.member "zzz" v = None)

(* --- protocol ------------------------------------------------------- *)

let protocol_parse () =
  (match Protocol.parse_request {|{"op":"admit","source":1,"target":2,"demand_mbps":0.5,"id":9}|} with
   | Ok (Some 9, Protocol.Admit { source = 1; target = 2; demand_mbps = 0.5 }) -> ()
   | _ -> Alcotest.fail "admit parse");
  (match Protocol.parse_request {|{"op":"query","source":1,"target":2}|} with
   | Ok (None, Protocol.Query { demand_mbps = None; _ }) -> ()
   | _ -> Alcotest.fail "query parse");
  (match Protocol.parse_request {|{"op":"release","nth":0}|} with
   | Ok (None, Protocol.Release_nth 0) -> ()
   | _ -> Alcotest.fail "release nth parse");
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted %s" bad
      | Error _ -> ())
    [
      {|{"op":"admit","source":1,"target":2}|} (* missing demand *);
      {|{"op":"admit","source":1,"target":2,"demand_mbps":-1}|};
      {|{"op":"release"}|};
      {|{"op":"release","flow":1,"nth":2}|};
      {|{"op":"warp"}|};
      {|{"source":1}|};
      "not json at all";
    ]

let protocol_quantisation () =
  (* Machine-noise around an exact 0.0005 boundary must collapse to one
     wire value, and a tiny negative optimum must not print as -0. *)
  check (Alcotest.float 0.0) "boundary from below" 11.063 (Protocol.mbps 11.062499999999998);
  check (Alcotest.float 0.0) "boundary exact" 11.063 (Protocol.mbps 11.0625);
  check (Alcotest.float 0.0) "boundary from above" 11.063 (Protocol.mbps 11.062500000000002);
  check (Alcotest.float 0.0) "negative zero normalised" 0.0 (Protocol.mbps (-1e-13));
  check Alcotest.bool "no minus sign" false
    (String.contains (Printf.sprintf "%.3f" (Protocol.mbps (-1e-13))) '-');
  check (Alcotest.float 0.0) "plain value" 2.5 (Protocol.mbps 2.5)

(* --- session semantics ---------------------------------------------- *)

let session_lifecycle () =
  let s = make_session Session.Warm 7L in
  let response, stop = Session.handle_line s ~seq:1 {|{"op":"ping"}|} in
  check Alcotest.string "ping" {|{"id":1,"ok":true,"op":"pong"}|} response;
  check Alcotest.bool "ping does not stop" false stop;
  (* Admit something modest; the empty network must accept it. *)
  let response, _ =
    Session.handle_line s ~seq:2 {|{"op":"admit","source":0,"target":1,"demand_mbps":0.25}|}
  in
  let v = Result.get_ok (Json.parse response) in
  check Alcotest.bool "admitted" true (Json.member "admitted" v = Some (Json.Bool true));
  check Alcotest.int "one live flow" 1 (Session.live_flows s);
  check Alcotest.int "background size" 1 (List.length (Session.background s));
  (* Snapshot shows it; releasing it empties the session. *)
  let snap, _ = Session.handle_line s ~seq:3 {|{"op":"snapshot"}|} in
  let sv = Result.get_ok (Json.parse snap) in
  (match Option.bind (Json.member "flows" sv) Json.to_list with
   | Some [ _ ] -> ()
   | _ -> Alcotest.fail "snapshot lists one flow");
  let rel, _ = Session.handle_line s ~seq:4 {|{"op":"release","nth":0}|} in
  check Alcotest.bool "release ok" true
    (Json.member "ok" (Result.get_ok (Json.parse rel)) = Some (Json.Bool true));
  check Alcotest.int "empty again" 0 (Session.live_flows s);
  (* Errors are responses, not exceptions; ids echo the sequence. *)
  List.iter
    (fun line ->
      let response, stop = Session.handle_line s ~seq:9 line in
      let v = Result.get_ok (Json.parse response) in
      check Alcotest.bool ("not ok: " ^ line) true (Json.member "ok" v = Some (Json.Bool false));
      check Alcotest.bool "no stop on error" false stop)
    [
      {|{"op":"release","flow":42}|};
      {|{"op":"release","nth":5}|};
      {|{"op":"query","source":0,"target":99}|};
      {|{"op":"query","source":3,"target":3}|};
      "garbage";
    ];
  let bye, stop = Session.handle_line s ~seq:10 {|{"op":"shutdown"}|} in
  check Alcotest.bool "shutdown ok" true
    (Json.member "ok" (Result.get_ok (Json.parse bye)) = Some (Json.Bool true));
  check Alcotest.bool "shutdown stops" true stop

let session_id_echo () =
  let s = make_session Session.Cold 7L in
  let response, _ = Session.handle_line s ~seq:5 {|{"op":"ping","id":77}|} in
  check Alcotest.string "explicit id wins" {|{"id":77,"ok":true,"op":"pong"}|} response

(* --- stdio transport over pipes -------------------------------------- *)

let stdio_transport () =
  let requests =
    [
      {|{"op":"admit","source":0,"target":1,"demand_mbps":0.25}|};
      {|{"op":"query","source":0,"target":1,"demand_mbps":0.25}|};
      {|{"op":"release","nth":0}|};
    ]
  in
  (* Small writes fit comfortably in pipe buffers, so a single thread
     can stage all input, run the server to EOF, then read the output. *)
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let payload = String.concat "\n" requests ^ "\n" in
  let written = Unix.write_substring in_w payload 0 (String.length payload) in
  check Alcotest.int "staged all input" (String.length payload) written;
  Unix.close in_w;
  let session = make_session Session.Warm 7L in
  Server.run_stdio ~session ~batch:2 in_r out_w;
  Unix.close in_r;
  Unix.close out_w;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read out_r chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close out_r;
  let lines = String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "") in
  check Alcotest.int "one response per request" (List.length requests) (List.length lines);
  List.iteri
    (fun i line ->
      let v = Result.get_ok (Json.parse line) in
      check Alcotest.bool "ok" true (Json.member "ok" v = Some (Json.Bool true));
      check Alcotest.bool "sequential id" true (Json.member "id" v = Some (Json.Num (float_of_int (i + 1)))))
    lines

(* --- traces ---------------------------------------------------------- *)

let trace_deterministic () =
  let t1 = Trace.generate ~n_ops:40 ~seed:5L () in
  let t2 = Trace.generate ~n_ops:40 ~seed:5L () in
  check Alcotest.bool "same seed, same trace" true (t1 = t2);
  let t3 = Trace.generate ~n_ops:40 ~seed:6L () in
  check Alcotest.bool "different seed, different trace" false (t1 = t3);
  check Alcotest.int "requested length" 40 (List.length t1);
  (* Every emitted line parses back as a protocol request. *)
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace line %s: %s" line msg)
    (Trace.to_request_lines t1)

(* --- the core property: warm = cold on any interleaving -------------- *)

let run_transcript ?pricer ?shards mode ~topo_seed lines =
  let s = make_session ?pricer ?shards mode topo_seed in
  List.mapi (fun i line -> fst (Session.handle_line s ~seq:(i + 1) line)) lines

let qcheck_warm_equals_cold =
  QCheck.Test.make ~name:"warm session transcript = cold reference on random interleavings"
    ~count:15
    QCheck.(pair (int_bound 100_000) (int_bound 3))
    (fun (seed, topo_pick) ->
      let topo_seed = Int64.of_int (7 + topo_pick) in
      let trace =
        Trace.generate ~n_nodes:small_config.Generator.n_nodes ~n_ops:25
          ~seed:(Int64.of_int seed) ()
      in
      let lines = Trace.to_request_lines trace in
      let warm = run_transcript Session.Warm ~topo_seed lines in
      let cold = run_transcript Session.Cold ~topo_seed lines in
      if warm <> cold then
        QCheck.Test.fail_reportf "transcripts diverge:@.%s@.vs@.%s"
          (String.concat "\n" warm) (String.concat "\n" cold)
      else true)

(* Heuristic-first pricing behind the wire: at this topology's scale
   the auto tier always ends with the exact fallback certifying the
   optimum, so — after wire quantisation — an auto session's transcript
   is byte-identical to the exact session's on any interleaving.  Runs
   sharded to cover the fan-out path too. *)
let qcheck_auto_session_equals_exact =
  QCheck.Test.make ~name:"auto-pricer session transcript = exact session transcript"
    ~count:10
    QCheck.(pair (int_bound 100_000) (int_bound 3))
    (fun (seed, topo_pick) ->
      let topo_seed = Int64.of_int (7 + topo_pick) in
      let trace =
        Trace.generate ~n_nodes:small_config.Generator.n_nodes ~n_ops:20
          ~seed:(Int64.of_int seed) ()
      in
      let lines = Trace.to_request_lines trace in
      let exact = run_transcript Session.Warm ~topo_seed lines in
      let auto =
        run_transcript ~pricer:Wsn_availbw.Column_gen.Auto ~shards:2 Session.Warm ~topo_seed
          lines
      in
      if auto <> exact then
        QCheck.Test.fail_reportf "transcripts diverge:@.%s@.vs@.%s"
          (String.concat "\n" auto) (String.concat "\n" exact)
      else true)

(* --- whatif / prices ------------------------------------------------- *)

let whatif_parse () =
  (match Protocol.parse_request {|{"op":"whatif","source":1,"target":2,"flow":0,"factor":1.5}|} with
   | Ok (None, Protocol.Whatif { source = 1; target = 2; queries = [ (0, 1.5) ]; exact = false })
     -> ()
   | _ -> Alcotest.fail "single whatif parse");
  (match
     Protocol.parse_request
       {|{"op":"whatif","source":1,"target":2,"queries":[{"flow":0,"factor":0.5},{"flow":3,"factor":2}],"exact":true}|}
   with
   | Ok (None, Protocol.Whatif { queries = [ (0, 0.5); (3, 2.0) ]; exact = true; _ }) -> ()
   | _ -> Alcotest.fail "batched whatif parse");
  (match Protocol.parse_request {|{"op":"whatif","source":1,"target":2,"flow":0,"factor":0}|} with
   | Ok (None, Protocol.Whatif { queries = [ (0, 0.0) ]; _ }) -> ()
   | _ -> Alcotest.fail "factor 0 (removal preview) parses");
  (match Protocol.parse_request {|{"op":"prices","source":4,"target":5,"id":3}|} with
   | Ok (Some 3, Protocol.Prices { source = 4; target = 5 }) -> ()
   | _ -> Alcotest.fail "prices parse");
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted %s" bad
      | Error _ -> ())
    [
      {|{"op":"whatif","source":1,"target":2}|} (* neither form *);
      {|{"op":"whatif","source":1,"target":2,"flow":0}|} (* missing factor *);
      {|{"op":"whatif","source":1,"target":2,"flow":0,"factor":-1}|};
      {|{"op":"whatif","source":1,"target":2,"flow":0,"factor":1,"queries":[]}|} (* both forms *);
      {|{"op":"whatif","source":1,"target":2,"queries":[]}|};
      {|{"op":"whatif","source":1,"target":2,"queries":[{"flow":0}]}|};
      {|{"op":"whatif","source":1,"target":2,"flow":0,"factor":1,"exact":1}|};
      {|{"op":"prices","source":1}|};
    ]

let results_of line =
  match Json.parse line with
  | Ok v -> (
    match Option.bind (Json.member "results" v) Json.to_list with
    | Some l -> List.map Json.to_string l
    | None -> Alcotest.failf "no results array in %s" line)
  | Error msg -> Alcotest.failf "bad response %s: %s" line msg

(* A batched whatif request must answer exactly as the same queries
   sent one per line: each query is independent (always scaled relative
   to the live set), so the per-result objects are byte-identical. *)
let whatif_batched_equals_sequential () =
  let s = make_session Session.Warm 7L in
  let seq = ref 0 in
  let send line =
    incr seq;
    fst (Session.handle_line s ~seq:!seq line)
  in
  let admitted =
    List.filter_map
      (fun (src, tgt) ->
        let r =
          send
            (Printf.sprintf {|{"op":"admit","source":%d,"target":%d,"demand_mbps":0.25}|} src
               tgt)
        in
        match Json.parse r with
        | Ok v when Json.member "admitted" v = Some (Json.Bool true) ->
          Option.bind (Json.member "flow" v) Json.to_int
        | _ -> None)
      [ (0, 1); (2, 3); (4, 5); (6, 7) ]
  in
  check Alcotest.bool "enough background admitted" true (List.length admitted >= 2);
  let queries = List.concat_map (fun fid -> [ (fid, 0.5); (fid, 1.0); (fid, 2.0) ]) admitted in
  let query_json (f, x) = Printf.sprintf {|{"flow":%d,"factor":%g}|} f x in
  let batched =
    send
      (Printf.sprintf {|{"op":"whatif","source":0,"target":1,"queries":[%s]}|}
         (String.concat "," (List.map query_json queries)))
  in
  let sequential =
    List.concat_map
      (fun (f, x) ->
        results_of
          (send
             (Printf.sprintf {|{"op":"whatif","source":0,"target":1,"flow":%d,"factor":%g}|} f
                x)))
      queries
  in
  check (Alcotest.list Alcotest.string) "batched results = sequential results" sequential
    (results_of batched);
  (* Factor 1 is the identity scaling: predicted availability must be
     the base figure, and exact mode must agree with the prediction. *)
  let f0 = List.hd admitted in
  let at_factor_1 exact =
    let line =
      send
        (Printf.sprintf {|{"op":"whatif","source":0,"target":1,"flow":%d,"factor":1%s}|} f0
           (if exact then {|,"exact":true|} else ""))
    in
    let v = Result.get_ok (Json.parse line) in
    let base = Option.bind (Json.member "base_mbps" v) Json.to_float in
    let avail =
      match Option.bind (Json.member "results" v) Json.to_list with
      | Some [ r ] -> Option.bind (Json.member "available_mbps" r) Json.to_float
      | _ -> None
    in
    (base, avail)
  in
  let base_p, avail_p = at_factor_1 false in
  let base_e, avail_e = at_factor_1 true in
  check Alcotest.bool "factor 1 predicts the base figure" true
    (base_p <> None && base_p = avail_p);
  check Alcotest.bool "exact factor 1 agrees" true (base_p = base_e && avail_p = avail_e);
  (* Unknown flow ids draw a protocol error, not a response. *)
  let err = send {|{"op":"whatif","source":0,"target":1,"flow":999,"factor":1}|} in
  check Alcotest.bool "unknown flow errors" true
    (match Json.parse err with
     | Ok v -> Json.member "ok" v = Some (Json.Bool false)
     | Error _ -> false)

let prices_respond () =
  let s = make_session Session.Warm 7L in
  let seq = ref 0 in
  let send line =
    incr seq;
    fst (Session.handle_line s ~seq:!seq line)
  in
  let _ = send {|{"op":"admit","source":0,"target":1,"demand_mbps":0.25}|} in
  let _ = send {|{"op":"admit","source":2,"target":3,"demand_mbps":0.25}|} in
  let line = send {|{"op":"prices","source":0,"target":1}|} in
  let v = Result.get_ok (Json.parse line) in
  check Alcotest.bool "prices ok" true (Json.member "ok" v = Some (Json.Bool true));
  let path_len =
    match Option.bind (Json.member "path" v) Json.to_list with
    | Some l -> List.length l
    | None -> Alcotest.failf "prices without a path: %s" line
  in
  (match Option.bind (Json.member "link_prices" v) Json.to_list with
   | Some l -> check Alcotest.int "one price per path link" path_len (List.length l)
   | None -> Alcotest.failf "no link_prices in %s" line);
  (match Option.bind (Json.member "throttle" v) Json.to_list with
   | Some l -> check Alcotest.int "one ranking entry per live flow" 2 (List.length l)
   | None -> Alcotest.failf "no throttle in %s" line);
  check Alcotest.bool "sigma present" true (Json.member "sigma_mbps" v <> None)

let suite =
  [
    Alcotest.test_case "json round-trips" `Quick json_roundtrip;
    Alcotest.test_case "json accessors" `Quick json_accessors;
    Alcotest.test_case "protocol parsing" `Quick protocol_parse;
    Alcotest.test_case "wire quantisation" `Quick protocol_quantisation;
    Alcotest.test_case "session lifecycle" `Quick session_lifecycle;
    Alcotest.test_case "session id echo" `Quick session_id_echo;
    Alcotest.test_case "stdio transport over pipes" `Quick stdio_transport;
    Alcotest.test_case "admission traces deterministic" `Quick trace_deterministic;
    QCheck_alcotest.to_alcotest qcheck_warm_equals_cold;
    QCheck_alcotest.to_alcotest qcheck_auto_session_equals_exact;
    Alcotest.test_case "whatif/prices parsing" `Quick whatif_parse;
    Alcotest.test_case "batched whatif = sequential" `Quick whatif_batched_equals_sequential;
    Alcotest.test_case "prices respond" `Quick prices_respond;
  ]
