(* Command-line driver: regenerate any of the paper's experiments.

   Exit codes are uniform across subcommands: 0 on success, 1 when an
   experiment or sweep job fails, 2 on usage or I/O errors.  All error
   prints funnel through [die]. *)

open Cmdliner
module Registry = Wsn_telemetry.Registry
module Export = Wsn_telemetry.Export
module Metrics = Wsn_routing.Metrics
module Engine = Wsn_engine

(* Raised (never printed directly) so in-flight telemetry can flush
   before the process exits; [with_telemetry] turns it into the exit
   code. *)
exception Die of int * string

let die code fmt = Printf.ksprintf (fun msg -> raise (Die (code, msg))) fmt

let exit_ok = 0

let exit_job_failure = 1

let exit_usage = 2

let seed_arg default =
  let doc = "Random seed (deterministic reproduction)." in
  Arg.(value & opt int64 default & info [ "seed" ] ~docv:"SEED" ~doc)

(* Global telemetry switch, available on every subcommand.  Bare
   [--telemetry] prints a summary table after the experiment;
   [--telemetry=FILE] writes a JSON snapshot instead.  Absent, the
   registry stays disabled and instrumentation is branch-only. *)
let telemetry_arg =
  let doc =
    "Record runtime telemetry (solver pivots, column counts, MAC events, span latencies). \
     Without a value, print a summary table after the run; with $(docv), write a JSON \
     snapshot to $(docv)."
  in
  Arg.(value & opt ~vopt:(Some "-") (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

(* Global parallelism switch, available on every subcommand: the size
   of the in-process domain pool used by set enumeration, pricing and
   simulator replications.  The default of 1 keeps every code path
   sequential (today's behaviour); any size produces byte-identical
   output. *)
let domains_arg =
  let doc =
    "Domains for in-process parallel hot paths (set enumeration, LP pricing, simulator \
     replications).  1 (the default) is fully sequential; results are byte-identical \
     for any value."
  in
  Arg.(value & opt int 1 & info [ "d"; "domains" ] ~docv:"N" ~doc)

(* The snapshot must flush even when [run] raises — a failing
   experiment's counters are exactly the ones worth reading — hence
   [Fun.protect].  The finally must not exit (it would mask the
   failure), so a snapshot I/O error is recorded and reported after. *)
let with_telemetry mode run =
  (match mode with Some _ -> Registry.set_enabled true | None -> ());
  let snapshot_error = ref None in
  let flush_telemetry () =
    match mode with
    | None -> ()
    | Some "-" ->
      print_newline ();
      Format.printf "%a@." Export.pp_summary (Registry.snapshot ())
    | Some file -> (
      try
        Export.write_file file (Registry.snapshot ());
        Printf.printf "wrote telemetry snapshot to %s\n" file
      with Sys_error msg -> snapshot_error := Some msg)
  in
  (match Fun.protect ~finally:flush_telemetry run with
   | () -> ()
   | exception Die (code, msg) ->
     Printf.eprintf "wsn_repro: %s\n%!" msg;
     exit code
   | exception e ->
     Printf.eprintf "wsn_repro: experiment failed: %s\n%!" (Printexc.to_string e);
     exit exit_job_failure);
  match !snapshot_error with
  | Some msg ->
    Printf.eprintf "wsn_repro: cannot write telemetry snapshot: %s\n%!" msg;
    exit exit_usage
  | None -> ()

(* Every subcommand funnels through here: validate and install the
   global domain count (usage errors exit 2, like any flag error),
   then run under the telemetry bracket. *)
let with_common telem domains run =
  with_telemetry telem (fun () ->
      if domains < 1 then die exit_usage "--domains must be >= 1 (got %d)" domains;
      Wsn_parallel.Pool.set_domains domains;
      run ())

let pricer_of_string s =
  match s with
  | "exact" -> Wsn_availbw.Column_gen.Exact
  | "heuristic" -> Wsn_availbw.Column_gen.Heuristic
  | "auto" -> Wsn_availbw.Column_gen.Auto
  | other -> die exit_usage "unknown pricer %S (have: exact, heuristic, auto)" other

let lp_pricing_of_string s =
  match s with
  | "dantzig" -> Wsn_availbw.Column_gen.Dantzig
  | "devex" -> Wsn_availbw.Column_gen.Devex
  | other -> die exit_usage "unknown lp pricing %S (have: dantzig, devex)" other

let stabilize_of_string s =
  match s with
  | "on" -> true
  | "off" -> false
  | other -> die exit_usage "bad --stabilize %S (have: on, off)" other

(* Shared master-LP tuning flags (scale/serve/soak).  Both change only
   how fast the warm master converges, never what it converges to. *)
let lp_pricing_arg =
  let doc =
    "Warm master simplex pricing: $(b,devex) (default; reference-weight pricing with \
     degenerate-pivot perturbation) or $(b,dantzig) (the unstabilised reference arm)."
  in
  Arg.(value & opt string "devex" & info [ "lp-pricing" ] ~docv:"RULE" ~doc)

let stabilize_arg =
  let doc =
    "Dual boxstep stabilisation of heuristic column pricing: $(b,on) (default) or $(b,off)."
  in
  Arg.(value & opt string "on" & info [ "stabilize" ] ~docv:"on|off" ~doc)

let e1_cmd =
  let run telem domains = with_common telem domains (fun () -> Wsn_experiments.Scenario1.print ()) in
  Cmd.v (Cmd.info "e1" ~doc:"Scenario I: idle-time estimation vs optimal scheduling")
    Term.(const run $ telemetry_arg $ domains_arg)

let e2_cmd =
  let run telem domains = with_common telem domains (fun () -> Wsn_experiments.Scenario2.print ()) in
  Cmd.v (Cmd.info "e2" ~doc:"Scenario II: the four-link chain and the 16.2 Mbps optimum")
    Term.(const run $ telemetry_arg $ domains_arg)

let e3_cmd =
  let run telem domains seed = with_common telem domains (fun () -> Wsn_experiments.Fig3.print ~seed ()) in
  Cmd.v (Cmd.info "e3" ~doc:"Fig. 3: routing metrics on the random 30-node topology")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let e4_cmd =
  let run telem domains seed = with_common telem domains (fun () -> Wsn_experiments.Fig4.print ~seed ()) in
  Cmd.v (Cmd.info "e4" ~doc:"Fig. 4: estimators of path available bandwidth")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let e5_cmd =
  let run telem domains seed =
    with_common telem domains (fun () -> Wsn_experiments.Hypothesis.print ~seed ())
  in
  Cmd.v (Cmd.info "e5" ~doc:"Hypothesis (8) violation sweep")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 11L)

let e6_cmd =
  let run telem domains seed =
    with_common telem domains (fun () -> Wsn_experiments.Mac_validation.print ~seed ())
  in
  Cmd.v (Cmd.info "e6" ~doc:"CSMA/CA-measured vs analytic idleness")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let e7_cmd =
  let run telem domains seed =
    with_common telem domains (fun () -> Wsn_experiments.Routing_strategies.print ~seed ())
  in
  Cmd.v (Cmd.info "e7" ~doc:"Bandwidth-aware routing strategies vs additive metrics")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let e12_cmd =
  let run telem domains seed =
    with_common telem domains (fun () -> Wsn_experiments.Joint_gap.print ~seed ())
  in
  Cmd.v (Cmd.info "e12" ~doc:"Single-path cost vs splittable joint routing optimum")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let e13_cmd =
  let run telem domains seed =
    with_common telem domains (fun () -> Wsn_experiments.Protocol_gap.print ~seed ())
  in
  Cmd.v (Cmd.info "e13" ~doc:"Protocol (pairwise) vs physical (SINR) interference model")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 5L)

let e14_cmd =
  let run telem domains = with_common telem domains (fun () -> Wsn_experiments.Scalability.print ()) in
  Cmd.v (Cmd.info "e14" ~doc:"Enumeration vs column generation scalability")
    Term.(const run $ telemetry_arg $ domains_arg)

let fig2_cmd =
  let doc = "Output file (- for stdout)." in
  let out = Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc) in
  let run telem domains seed out =
    with_common telem domains (fun () ->
        if out = "-" then Wsn_experiments.Fig2.print ~seed ()
        else begin
          (try Wsn_experiments.Fig2.write ~seed ~path:out ()
           with Sys_error msg -> die exit_usage "cannot write %s: %s" out msg);
          Printf.printf "wrote %s (render: neato -n2 -Tpng %s -o fig2.png)\n" out out
        end)
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Emit the Fig. 2 topology/paths picture as Graphviz DOT")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L $ out)

let ablations_cmd =
  let run telem domains seed =
    with_common telem domains (fun () ->
        Wsn_experiments.Ablations.Rts_cts.print ~seed ();
        print_newline ();
        Wsn_experiments.Ablations.Cs_range.print ~seed ();
        print_newline ();
        Wsn_experiments.Ablations.Quantisation.print ();
        print_newline ();
        Wsn_experiments.Ablations.Dominance.print ~seed ())
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Ablations E8-E11: RTS/CTS, CS range, quantisation, dominance filter")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

(* --- sweep: grid execution on the Wsn_engine pool -------------------- *)

let metric_names_of_string s =
  if s = "all" then List.map Metrics.name Metrics.all
  else
    List.map
      (fun name ->
        let name = String.trim name in
        match List.find_opt (fun m -> Metrics.name m = name) Metrics.all with
        | Some m -> Metrics.name m
        | None ->
          die exit_usage "unknown metric %S (have: all, %s)" name
            (String.concat ", " (List.map Metrics.name Metrics.all)))
      (String.split_on_char ',' s)

let sweep_cmd =
  let kind =
    let doc = "Job kind: fig3, or the fault-injection kinds fail/sleep/crash (tests)." in
    Arg.(value & opt string "fig3" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let seeds =
    let doc = "Seed grid: comma-separated integers and inclusive spans, e.g. 1..100 or 30 or 1..3,7." in
    Arg.(value & opt string "1..20" & info [ "seeds" ] ~docv:"RANGE" ~doc)
  in
  let metrics =
    let doc = "Routing metrics: 'all' or a comma-separated subset of hop-count, e2eTD, average-e2eD." in
    Arg.(value & opt string "all" & info [ "metrics" ] ~docv:"NAMES" ~doc)
  in
  let n_flows =
    let doc = "Flows offered per job (the paper uses 8)." in
    Arg.(value & opt int 8 & info [ "n-flows" ] ~docv:"N" ~doc)
  in
  let demand =
    let doc = "Per-flow demand in Mbit/s (the paper uses 2.0)." in
    Arg.(value & opt float 2.0 & info [ "demand" ] ~docv:"MBPS" ~doc)
  in
  let backend =
    let doc =
      "Job execution backend: $(b,fork) (default; crash-isolated child processes with \
       timeouts) or $(b,domains) (in-process domain pool; pure jobs only, no fork \
       overhead, results byte-identical to fork)."
    in
    Arg.(value & opt string "fork" & info [ "backend" ] ~docv:"NAME" ~doc)
  in
  let jobs =
    let doc = "Worker processes; 0 runs in-process (no crash isolation or timeouts)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let timeout =
    let doc = "Per-job wall-clock timeout in seconds; 0 disables." in
    Arg.(value & opt float 300.0 & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let retries =
    let doc = "Extra attempts for a failed or timed-out job." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let cache_dir =
    let doc = "Content-addressed result cache directory." in
    Arg.(value & opt string Engine.Cache.default_dir & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache.")
  in
  let out =
    let doc = "Write results (one JSON object per job, in grid order) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let journal =
    let doc = "Run journal path (default: OUT.journal when --out is given)." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume =
    Arg.(value & flag & info [ "resume" ] ~doc:"Resume an interrupted sweep from its journal.")
  in
  let retry_failed =
    Arg.(value & flag & info [ "retry-failed" ] ~doc:"On --resume, re-run jobs the journal recorded as failed.")
  in
  let table =
    let doc = "Print per-seed Fig. 3 tables (byte-identical to e3) instead of the aggregate." in
    Arg.(value & flag & info [ "table" ] ~doc)
  in
  let run telem domains kind seeds metrics n_flows demand backend jobs timeout retries cache_dir
      no_cache out journal resume retry_failed table =
    with_common telem domains @@ fun () ->
    let backend =
      match backend with
      | "fork" -> Engine.Pool.Fork
      | "domains" ->
        (* Fault-injection kinds exist to crash, hang or kill their
           worker; only the forked backend survives that. *)
        if kind <> "fig3" then
          die exit_usage "--backend domains requires a pure job kind (fig3), not %s" kind;
        Engine.Pool.Domains
      | other -> die exit_usage "unknown backend %S (have: fork, domains)" other
    in
    let seeds =
      match Engine.Grid.parse_range seeds with
      | Ok s -> s
      | Error msg -> die exit_usage "%s" msg
    in
    let metric_names = metric_names_of_string metrics in
    let specs =
      try Engine.Grid.specs ~kind ~seeds ~metrics:metric_names ~n_flows ~demand_mbps:demand
      with Invalid_argument msg -> die exit_usage "%s" msg
    in
    let journal =
      match (journal, out) with
      | (Some _ as j), _ -> j
      | None, Some o -> Some (o ^ ".journal")
      | None, None -> None
    in
    if resume && journal = None then die exit_usage "--resume needs --journal or --out";
    let cfg =
      {
        Engine.Sweep.backend;
        workers = jobs;
        timeout_s = (if timeout <= 0.0 then infinity else timeout);
        retries;
        cache_dir = (if no_cache then None else Some cache_dir);
        fingerprint = None;
        out;
        journal;
        resume;
        retry_failed;
      }
    in
    let results, summary =
      try Engine.Sweep.run cfg ~runner:Wsn_experiments.Sweep_jobs.runner specs
      with Sys_error msg -> die exit_usage "%s" msg
    in
    let ok_payloads =
      List.filter_map
        (fun (r : Engine.Pool.result) ->
          match r.Engine.Pool.outcome with
          | Engine.Pool.Done payload -> Some (r.Engine.Pool.spec, payload)
          | Engine.Pool.Failed _ -> None)
        results
    in
    if table then print_string (Wsn_experiments.Sweep_jobs.table ok_payloads)
    else if kind = "fig3" && ok_payloads <> [] then begin
      Printf.printf "# mean admitted flows (of %d) over %d seeds\n" n_flows (List.length seeds);
      List.iter
        (fun (m, mean) -> Printf.printf "%-14s %.2f\n" (Metrics.name m) mean)
        (Wsn_experiments.Sweep_jobs.mean_admitted ok_payloads)
    end;
    List.iter
      (fun (r : Engine.Pool.result) ->
        match r.Engine.Pool.outcome with
        | Engine.Pool.Done _ -> ()
        | Engine.Pool.Failed f ->
          Printf.eprintf "wsn_repro: job failed after %d attempt%s: %s: %s\n"
            r.Engine.Pool.attempts
            (if r.Engine.Pool.attempts = 1 then "" else "s")
            (Engine.Spec.canonical r.Engine.Pool.spec)
            (Engine.Pool.failure_to_string f))
      results;
    Format.eprintf "%a@." Engine.Sweep.pp_summary summary;
    if summary.Engine.Sweep.failed > 0 then
      die exit_job_failure "%d of %d jobs failed" summary.Engine.Sweep.failed
        summary.Engine.Sweep.total
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run an experiment grid (seeds x metrics) on the parallel engine: forked workers, \
          content-addressed cache, resumable journal")
    Term.(
      const run $ telemetry_arg $ domains_arg $ kind $ seeds $ metrics $ n_flows $ demand
      $ backend $ jobs $ timeout $ retries $ cache_dir $ no_cache $ out $ journal $ resume
      $ retry_failed $ table)

let scale_cmd =
  let ns =
    let doc = "Comma-separated topology sizes (nodes) to sweep." in
    Arg.(value & opt string "30,100,300,1000" & info [ "n"; "nodes" ] ~docv:"SIZES" ~doc)
  in
  let pricer =
    let doc = "Pricing tier: exact, heuristic or auto (default)." in
    Arg.(value & opt string "auto" & info [ "pricer" ] ~docv:"TIER" ~doc)
  in
  let shards =
    let doc = "Shard cap for heuristic pricing (0 = one shard per locality component)." in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_iterations =
    let doc =
      "Cap on master solves per query (0 = library default).  Heuristic tiers are \
       anytime: a cap trades wall time for bracket gap."
    in
    Arg.(value & opt int 0 & info [ "max-iterations" ] ~docv:"N" ~doc)
  in
  let run telem domains seed ns pricer shards max_iterations lp_pricing stabilize =
    with_common telem domains @@ fun () ->
    let pricer = pricer_of_string pricer in
    let lp_pricing = lp_pricing_of_string lp_pricing in
    let stabilize = stabilize_of_string stabilize in
    if shards < 0 then die exit_usage "--shards must be >= 0 (got %d)" shards;
    if max_iterations < 0 then
      die exit_usage "--max-iterations must be >= 0 (got %d)" max_iterations;
    let ns =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 2 -> n
          | Some n -> die exit_usage "-n sizes must be >= 2 (got %d)" n
          | None -> die exit_usage "bad size %S in -n" s)
        (String.split_on_char ',' ns)
    in
    if ns = [] then die exit_usage "-n needs at least one size";
    let max_iterations = if max_iterations = 0 then None else Some max_iterations in
    Wsn_experiments.Scale.print ~ns ?max_iterations ~pricer ~shards ~lp_pricing ~stabilize
      ~seed ()
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "E16: bracket Eq. 6 availability on generated 100-1000-node topologies \
          (heuristic column pricing vs the hard-conflict clique upper bound)")
    Term.(
      const run $ telemetry_arg $ domains_arg $ seed_arg 30L $ ns $ pricer $ shards
      $ max_iterations $ lp_pricing_arg $ stabilize_arg)

let soak_cmd =
  let epochs =
    let doc = "Number of epochs the horizon is cut into." in
    Arg.(value & opt int 48 & info [ "epochs" ] ~docv:"N" ~doc)
  in
  let nodes =
    let doc = "Node universe size." in
    Arg.(value & opt int 30 & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let horizon =
    let doc = "Simulated timeline length in hours." in
    Arg.(value & opt float 24.0 & info [ "horizon-h" ] ~docv:"HOURS" ~doc)
  in
  let window =
    let doc = "MAC measurement window per epoch, in simulated microseconds." in
    Arg.(value & opt int 1_000_000 & info [ "window-us" ] ~docv:"US" ~doc)
  in
  let pricer =
    let doc = "Column pricing tier for the warm LP re-solves: exact, heuristic or auto (default)." in
    Arg.(value & opt string "auto" & info [ "pricer" ] ~docv:"TIER" ~doc)
  in
  let rebuild =
    let doc =
      "Rebuild the MAC kernel from scratch every churn epoch instead of patching it \
       incrementally.  Output is byte-identical either way (the soak bench gates this); \
       the flag exists for timing comparisons."
    in
    Arg.(value & flag & info [ "rebuild" ] ~doc)
  in
  let run telem domains seed epochs nodes horizon window pricer lp_pricing stabilize rebuild =
    with_common telem domains @@ fun () ->
    if epochs < 1 then die exit_usage "--epochs must be >= 1 (got %d)" epochs;
    if nodes < 2 then die exit_usage "--nodes must be >= 2 (got %d)" nodes;
    if horizon <= 0.0 then die exit_usage "--horizon-h must be > 0 (got %g)" horizon;
    if window < 1 then die exit_usage "--window-us must be >= 1 (got %d)" window;
    let pricer = pricer_of_string pricer in
    let lp_pricing = lp_pricing_of_string lp_pricing in
    let stabilize = stabilize_of_string stabilize in
    Wsn_experiments.Soak.print ~seed ~epochs ~n_nodes:nodes ~horizon_h:horizon
      ~window_us:window ~pricer ~lp_pricing ~stabilize ~rebuild ()
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "E17: replay a seeded time-varying scenario (flow churn, diurnal load, node \
          join/leave, waypoint drift) tracking the online estimators against warm LP \
          ground truth, with incremental per-epoch kernel maintenance")
    Term.(
      const run $ telemetry_arg $ domains_arg $ seed_arg 30L $ epochs $ nodes $ horizon
      $ window $ pricer $ lp_pricing_arg $ stabilize_arg $ rebuild)

let whatif_cmd =
  let factors =
    let doc = "Comma-separated demand-scaling factors to probe." in
    Arg.(value & opt string "0.0,0.5,0.9,1.1,1.5,2.0" & info [ "factors" ] ~docv:"LIST" ~doc)
  in
  let nodes =
    let doc = "Topology size (nodes) of the generated scenario." in
    Arg.(value & opt int 30 & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let flows =
    let doc = "Flows drawn in the scenario (0 = scenario default)." in
    Arg.(value & opt int 0 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let demand =
    let doc =
      "Per-flow demand in Mbit/s (0 = scenario default).  An unschedulable demand makes the \
       experiment fail (exit 1): no certified optimum, nothing to differentiate."
    in
    Arg.(value & opt float 0.0 & info [ "demand" ] ~docv:"MBPS" ~doc)
  in
  let run telem domains seed factors nodes flows demand =
    with_common telem domains @@ fun () ->
    if nodes < 2 then die exit_usage "--nodes must be >= 2 (got %d)" nodes;
    if flows < 0 then die exit_usage "--flows must be >= 0 (got %d)" flows;
    if demand < 0.0 || not (Float.is_finite demand) then
      die exit_usage "--demand must be finite and >= 0 (got %g)" demand;
    let factors =
      List.map
        (fun s ->
          match float_of_string_opt (String.trim s) with
          | Some f when Float.is_finite f && f >= 0.0 -> f
          | Some f -> die exit_usage "--factors must be finite and >= 0 (got %g)" f
          | None -> die exit_usage "bad factor %S in --factors" s)
        (String.split_on_char ',' factors)
    in
    if factors = [] then die exit_usage "--factors needs at least one factor";
    let n_flows = if flows = 0 then None else Some flows in
    let demand_mbps = if demand = 0.0 then None else Some demand in
    let rows =
      try Wsn_experiments.Whatif.print ~factors ?n_flows ?demand_mbps ~n_nodes:nodes ~seed ()
      with Failure msg -> die exit_job_failure "%s" msg
    in
    if not (Wsn_experiments.Whatif.all_in_range_exact rows) then
      die exit_job_failure
        "an in-range prediction disagreed with its re-solve at wire precision"
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:
         "E18: answer demand-scaling what-if queries from the warm master's cached basis \
          and gate each in-range prediction against a fresh certified re-solve")
    Term.(
      const run $ telemetry_arg $ domains_arg $ seed_arg 30L $ factors $ nodes $ flows $ demand)

let topo_cmd =
  let run telem domains seed =
    with_common telem domains (fun () ->
        let scenario = Wsn_workload.Scenarios.Random_scenario.generate ~seed () in
        Format.printf "%a@." Wsn_net.Topology.pp
          scenario.Wsn_workload.Scenarios.Random_scenario.topology)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Print a generated topology")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let all_cmd =
  let run telem domains seed =
    with_common telem domains (fun () ->
        Wsn_experiments.Scenario1.print ();
        print_newline ();
        Wsn_experiments.Scenario2.print ();
        print_newline ();
        Wsn_experiments.Fig3.print ~seed ();
        print_newline ();
        Wsn_experiments.Fig4.print ~seed ();
        print_newline ();
        Wsn_experiments.Hypothesis.print ();
        print_newline ();
        Wsn_experiments.Mac_validation.print ~seed ();
        print_newline ();
        Wsn_experiments.Routing_strategies.print ~seed ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run $ telemetry_arg $ domains_arg $ seed_arg 30L)

let serve_cmd =
  let socket =
    let doc =
      "Serve (or with $(b,--client), connect) over a Unix-domain socket at $(docv) instead of \
       stdio."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let client =
    let doc =
      "Act as a client: send request lines from stdin to the server at $(b,--socket) and print \
       its response lines."
    in
    Arg.(value & flag & info [ "client" ] ~doc)
  in
  let gen_trace =
    let doc =
      "Generate $(docv) seeded Poisson admission-trace request lines on stdout and exit (no \
       server)."
    in
    Arg.(value & opt (some int) None & info [ "gen-trace" ] ~docv:"N" ~doc)
  in
  let cold =
    let doc =
      "Cold reference mode: recompute every answer from scratch (full enumeration LP, fresh \
       background schedule per request) instead of warm incremental state.  Response \
       transcripts are byte-identical either way."
    in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let batch =
    let doc = "Maximum request lines answered per wave (burst batching)." in
    Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let max_conns =
    let doc = "Exit after serving $(docv) socket connections." in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let metric =
    let doc = "Routing metric for admits and queries: hop-count, e2eTD or average-e2eD." in
    Arg.(value & opt string "average-e2eD" & info [ "metric" ] ~docv:"NAME" ~doc)
  in
  let pricer =
    let doc =
      "Column pricing tier for warm queries: $(b,exact) (default; branch-and-bound every \
       round), $(b,heuristic) (greedy, uncertified lower bounds) or $(b,auto) (heuristic \
       with exact certification on small universes — byte-identical to exact at the \
       paper's scale)."
    in
    Arg.(value & opt string "exact" & info [ "pricer" ] ~docv:"TIER" ~doc)
  in
  let shards =
    let doc = "Shard cap for heuristic pricing (0 = one shard per locality component)." in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run telem domains seed socket client gen_trace cold batch metric pricer shards
      lp_pricing stabilize max_conns =
    with_common telem domains @@ fun () ->
    match gen_trace with
    | Some n ->
      if n < 0 then die exit_usage "--gen-trace must be >= 0 (got %d)" n;
      let trace = Wsn_workload.Scenarios.Admission_trace.generate ~n_ops:n ~seed () in
      List.iter print_endline (Wsn_workload.Scenarios.Admission_trace.to_request_lines trace)
    | None -> (
      let metric =
        match List.find_opt (fun m -> Metrics.name m = metric) Metrics.all with
        | Some m -> m
        | None ->
          die exit_usage "unknown metric %S (have: %s)" metric
            (String.concat ", " (List.map Metrics.name Metrics.all))
      in
      if batch < 1 then die exit_usage "--batch must be >= 1 (got %d)" batch;
      let pricer = pricer_of_string pricer in
      let lp_pricing = lp_pricing_of_string lp_pricing in
      let stabilize = stabilize_of_string stabilize in
      if shards < 0 then die exit_usage "--shards must be >= 0 (got %d)" shards;
      (match max_conns with
       | Some n when n < 1 -> die exit_usage "--max-conns must be >= 1 (got %d)" n
       | Some _ | None -> ());
      if client && socket = None then die exit_usage "--client needs --socket PATH";
      match (socket, client) with
      | Some path, true ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line stdin :: !lines
           done
         with End_of_file -> ());
        (try Wsn_admission.Server.run_client ~path ~lines:(List.rev !lines) print_endline
         with Unix.Unix_error (e, _, _) ->
           die exit_job_failure "cannot reach server at %s: %s" path (Unix.error_message e))
      | (Some _ | None), _ -> (
        let scenario = Wsn_workload.Scenarios.Random_scenario.generate ~seed () in
        let topo = scenario.Wsn_workload.Scenarios.Random_scenario.topology in
        let model = scenario.Wsn_workload.Scenarios.Random_scenario.model in
        let mode = if cold then Wsn_admission.Session.Cold else Wsn_admission.Session.Warm in
        match socket with
        | None ->
          let session =
            Wsn_admission.Session.create ~metric ~pricer ~shards ~lp_pricing ~stabilize
              ~mode ~topo ~model ()
          in
          Wsn_admission.Server.run_stdio ~session ~batch Unix.stdin Unix.stdout
        | Some path ->
          let make_session () =
            Wsn_admission.Session.create ~metric ~pricer ~shards ~lp_pricing ~stabilize
              ~mode ~topo ~model:(Wsn_conflict.Model.fork_view model) ()
          in
          Wsn_admission.Server.run_socket ~make_session ~batch ?max_conns ~path ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident admission-control server: line-JSON admit/query/release over stdio or a \
          Unix socket, warm-started LP queries against a resident topology")
    Term.(
      const run $ telemetry_arg $ domains_arg $ seed_arg 30L $ socket $ client $ gen_trace
      $ cold $ batch $ metric $ pricer $ shards $ lp_pricing_arg $ stabilize_arg
      $ max_conns)

let () =
  let doc = "Reproduction of 'Available Bandwidth in Multirate and Multihop WSNs' (ICDCS'09)" in
  let exits =
    [
      Cmd.Exit.info exit_ok ~doc:"on success.";
      Cmd.Exit.info exit_job_failure ~doc:"when an experiment or sweep job fails.";
      Cmd.Exit.info exit_usage ~doc:"on usage or I/O errors.";
    ]
  in
  let info = Cmd.info "wsn_repro" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        e1_cmd; e2_cmd; e3_cmd; e4_cmd; e5_cmd; e6_cmd; e7_cmd; e12_cmd; e13_cmd; e14_cmd; fig2_cmd;
        ablations_cmd; sweep_cmd; scale_cmd; soak_cmd; whatif_cmd; topo_cmd; serve_cmd;
        all_cmd;
      ]
  in
  (* Map Cmdliner's evaluation outcomes onto the uniform exit codes
     (Cmdliner's own defaults are 124/125). *)
  exit
    (match Cmd.eval_value group with
     | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit_ok
     | Error (`Parse | `Term) -> exit_usage
     | Error `Exn -> exit_job_failure)
