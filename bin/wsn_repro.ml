(* Command-line driver: regenerate any of the paper's experiments. *)

open Cmdliner

let seed_arg default =
  let doc = "Random seed (deterministic reproduction)." in
  Arg.(value & opt int64 default & info [ "seed" ] ~docv:"SEED" ~doc)

(* Global telemetry switch, available on every subcommand.  Bare
   [--telemetry] prints a summary table after the experiment;
   [--telemetry=FILE] writes a JSON snapshot instead.  Absent, the
   registry stays disabled and instrumentation is branch-only. *)
let telemetry_arg =
  let doc =
    "Record runtime telemetry (solver pivots, column counts, MAC events, span latencies). \
     Without a value, print a summary table after the run; with $(docv), write a JSON \
     snapshot to $(docv)."
  in
  Arg.(value & opt ~vopt:(Some "-") (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let with_telemetry mode run =
  (match mode with Some _ -> Wsn_telemetry.Registry.set_enabled true | None -> ());
  run ();
  match mode with
  | None -> ()
  | Some "-" ->
    print_newline ();
    Format.printf "%a@." Wsn_telemetry.Export.pp_summary (Wsn_telemetry.Registry.snapshot ())
  | Some file -> (
    try
      Wsn_telemetry.Export.write_file file (Wsn_telemetry.Registry.snapshot ());
      Printf.printf "wrote telemetry snapshot to %s\n" file
    with Sys_error msg ->
      Printf.eprintf "wsn_repro: cannot write telemetry snapshot: %s\n" msg;
      exit 1)

let e1_cmd =
  let run telem = with_telemetry telem (fun () -> Wsn_experiments.Scenario1.print ()) in
  Cmd.v (Cmd.info "e1" ~doc:"Scenario I: idle-time estimation vs optimal scheduling")
    Term.(const run $ telemetry_arg)

let e2_cmd =
  let run telem = with_telemetry telem (fun () -> Wsn_experiments.Scenario2.print ()) in
  Cmd.v (Cmd.info "e2" ~doc:"Scenario II: the four-link chain and the 16.2 Mbps optimum")
    Term.(const run $ telemetry_arg)

let e3_cmd =
  let run telem seed = with_telemetry telem (fun () -> Wsn_experiments.Fig3.print ~seed ()) in
  Cmd.v (Cmd.info "e3" ~doc:"Fig. 3: routing metrics on the random 30-node topology")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let e4_cmd =
  let run telem seed = with_telemetry telem (fun () -> Wsn_experiments.Fig4.print ~seed ()) in
  Cmd.v (Cmd.info "e4" ~doc:"Fig. 4: estimators of path available bandwidth")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let e5_cmd =
  let run telem seed =
    with_telemetry telem (fun () -> Wsn_experiments.Hypothesis.print ~seed ())
  in
  Cmd.v (Cmd.info "e5" ~doc:"Hypothesis (8) violation sweep")
    Term.(const run $ telemetry_arg $ seed_arg 11L)

let e6_cmd =
  let run telem seed =
    with_telemetry telem (fun () -> Wsn_experiments.Mac_validation.print ~seed ())
  in
  Cmd.v (Cmd.info "e6" ~doc:"CSMA/CA-measured vs analytic idleness")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let e7_cmd =
  let run telem seed =
    with_telemetry telem (fun () -> Wsn_experiments.Routing_strategies.print ~seed ())
  in
  Cmd.v (Cmd.info "e7" ~doc:"Bandwidth-aware routing strategies vs additive metrics")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let e12_cmd =
  let run telem seed =
    with_telemetry telem (fun () -> Wsn_experiments.Joint_gap.print ~seed ())
  in
  Cmd.v (Cmd.info "e12" ~doc:"Single-path cost vs splittable joint routing optimum")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let e13_cmd =
  let run telem seed =
    with_telemetry telem (fun () -> Wsn_experiments.Protocol_gap.print ~seed ())
  in
  Cmd.v (Cmd.info "e13" ~doc:"Protocol (pairwise) vs physical (SINR) interference model")
    Term.(const run $ telemetry_arg $ seed_arg 5L)

let e14_cmd =
  let run telem = with_telemetry telem (fun () -> Wsn_experiments.Scalability.print ()) in
  Cmd.v (Cmd.info "e14" ~doc:"Enumeration vs column generation scalability")
    Term.(const run $ telemetry_arg)

let fig2_cmd =
  let doc = "Output file (- for stdout)." in
  let out = Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc) in
  let run telem seed out =
    with_telemetry telem (fun () ->
        if out = "-" then Wsn_experiments.Fig2.print ~seed ()
        else begin
          Wsn_experiments.Fig2.write ~seed ~path:out ();
          Printf.printf "wrote %s (render: neato -n2 -Tpng %s -o fig2.png)\n" out out
        end)
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Emit the Fig. 2 topology/paths picture as Graphviz DOT")
    Term.(const run $ telemetry_arg $ seed_arg 30L $ out)

let ablations_cmd =
  let run telem seed =
    with_telemetry telem (fun () ->
        Wsn_experiments.Ablations.Rts_cts.print ~seed ();
        print_newline ();
        Wsn_experiments.Ablations.Cs_range.print ~seed ();
        print_newline ();
        Wsn_experiments.Ablations.Quantisation.print ();
        print_newline ();
        Wsn_experiments.Ablations.Dominance.print ~seed ())
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Ablations E8-E11: RTS/CTS, CS range, quantisation, dominance filter")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let sweep_cmd =
  let doc = "Number of seeds to sweep." in
  let count = Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc) in
  let run telem count =
    with_telemetry telem (fun () ->
        let seeds = List.init count (fun i -> Int64.of_int (i + 1)) in
        let means = Wsn_experiments.Fig3.sweep_seeds ~seeds in
        Printf.printf "# mean admitted flows (of 8) over %d seeds\n" count;
        List.iter
          (fun (m, mean) -> Printf.printf "%-14s %.2f\n" (Wsn_routing.Metrics.name m) mean)
          means)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Aggregate Fig. 3 over many seeds")
    Term.(const run $ telemetry_arg $ count)

let topo_cmd =
  let run telem seed =
    with_telemetry telem (fun () ->
        let scenario = Wsn_workload.Scenarios.Random_scenario.generate ~seed () in
        Format.printf "%a@." Wsn_net.Topology.pp
          scenario.Wsn_workload.Scenarios.Random_scenario.topology)
  in
  Cmd.v (Cmd.info "topo" ~doc:"Print a generated topology")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let all_cmd =
  let run telem seed =
    with_telemetry telem (fun () ->
        Wsn_experiments.Scenario1.print ();
        print_newline ();
        Wsn_experiments.Scenario2.print ();
        print_newline ();
        Wsn_experiments.Fig3.print ~seed ();
        print_newline ();
        Wsn_experiments.Fig4.print ~seed ();
        print_newline ();
        Wsn_experiments.Hypothesis.print ();
        print_newline ();
        Wsn_experiments.Mac_validation.print ~seed ();
        print_newline ();
        Wsn_experiments.Routing_strategies.print ~seed ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run $ telemetry_arg $ seed_arg 30L)

let () =
  let doc = "Reproduction of 'Available Bandwidth in Multirate and Multihop WSNs' (ICDCS'09)" in
  let info = Cmd.info "wsn_repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            e1_cmd; e2_cmd; e3_cmd; e4_cmd; e5_cmd; e6_cmd; e7_cmd; e12_cmd; e13_cmd; e14_cmd; fig2_cmd;
            ablations_cmd; sweep_cmd; topo_cmd; all_cmd;
          ]))
